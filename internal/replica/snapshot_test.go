package replica

import (
	"testing"
	"time"

	"prognosticator/internal/engine"
	"prognosticator/internal/store"
	"prognosticator/internal/value"
	"prognosticator/internal/workload/tpcc"
)

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	s := &StoreSnapshot{
		Index:      42,
		Batches:    7,
		Watermark:  40,
		AppliedIDs: map[string]uint64{"b-41": 41, "b-42": 42},
		Pairs: []SnapPair{
			{Key: value.NewKey("ACC", value.Int(2)).Encode(), Val: value.Int(5)},
			{Key: value.NewKey("ACC", value.Int(1)).Encode(), Val: value.Int(9)},
		},
	}
	enc, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	// Encoding must sort pairs so all replicas produce identical bytes.
	if s.Pairs[0].Key > s.Pairs[1].Key {
		t.Fatal("pairs not sorted by EncodeSnapshot")
	}
	got, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != 42 || got.Batches != 7 || got.Watermark != 40 ||
		len(got.AppliedIDs) != 2 || len(got.Pairs) != 2 {
		t.Fatalf("round trip lost data: %+v", got)
	}

	// A flipped payload bit must fail the CRC, not half-restore.
	bad := append([]byte(nil), enc...)
	bad[len(bad)-1] ^= 0x01
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Fatal("corrupted snapshot decoded without error")
	}
	// A truncated file must be rejected too.
	if _, err := DecodeSnapshot(enc[:len(enc)/2]); err == nil {
		t.Fatal("truncated snapshot decoded without error")
	}
}

func TestSnapshotFileNewestParseableWins(t *testing.T) {
	dir := t.TempDir()
	for _, idx := range []uint64{4, 8} {
		enc, err := EncodeSnapshot(&StoreSnapshot{Index: idx, Batches: int(idx)})
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteSnapshotFile(dir, idx, enc); err != nil {
			t.Fatal(err)
		}
	}
	s, err := LoadSnapshotFile(dir)
	if err != nil || s == nil || s.Index != 8 {
		t.Fatalf("load = %+v, %v (want index 8)", s, err)
	}
	// Older snapshots are pruned by the superseding write.
	if idxs := listSnapshotIndices(dir); len(idxs) != 1 || idxs[0] != 8 {
		t.Fatalf("snapshot files = %v, want [8]", idxs)
	}
}

// submitDeposits pushes n single-batch rounds of deposits through the
// cluster, deterministic in b so reference runs replay the same workload.
func submitDeposits(t *testing.T, c *Cluster, start, n int) {
	t.Helper()
	for b := start; b < start+n; b++ {
		var reqs []struct {
			TxName string
			Inputs map[string]value.Value
		}
		for i := 0; i < 8; i++ {
			reqs = append(reqs, deposit(int64((b*5+i)%16), int64(1+(b+i)%7)))
		}
		if err := c.SubmitBatch(reqs, 20*time.Second); err != nil {
			t.Fatal(err)
		}
	}
}

// TestClusterSnapshotRecovery is the tentpole acceptance test: a replica
// restarted after >= 3 snapshot intervals must recover from its snapshot +
// WAL suffix, and raft catch-up must NOT replay compacted entries from index
// 1 — the redelivered count stays below one snapshot interval where the old
// replay-from-1 behavior would redeliver the replica's whole history.
func TestClusterSnapshotRecovery(t *testing.T) {
	const every = 4
	cfg := clusterConfig(t, 3, nil)
	cfg.DataDir = t.TempDir()
	cfg.SnapshotEvery = every
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// 14 batches = 14 raft entries: snapshots at 4, 8 and 12 (3 intervals).
	submitDeposits(t, c, 0, 14)
	li, err := c.WaitLeader(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	victim := (li + 1) % c.Size()
	// The victim's own raft log must be compacted at the third snapshot
	// before the crash, or the test would pass trivially via its local log.
	if err := c.WaitSnapshot(victim, 3*every, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := c.ReplicaAt(victim).Snapshots(); got < 3 {
		t.Fatalf("victim took %d snapshots before crash, want >= 3", got)
	}
	if err := c.Crash(victim); err != nil {
		t.Fatal(err)
	}
	submitDeposits(t, c, 14, 2)
	if err := c.Restart(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCaughtUp(20 * time.Second); err != nil {
		t.Fatal(err)
	}

	rec := c.LastRecovery(victim)
	if !rec.FromSnapshot {
		t.Fatalf("restart did not recover from snapshot: %+v", rec)
	}
	if rec.SnapshotIndex < 3*every {
		t.Fatalf("recovered from snapshot at %d, want >= %d", rec.SnapshotIndex, 3*every)
	}
	if rec.LastIndex < rec.SnapshotIndex {
		t.Fatalf("resume point %d below snapshot %d", rec.LastIndex, rec.SnapshotIndex)
	}
	// The decisive assertion: catch-up must not have replayed the compacted
	// prefix. Replay-from-1 would redeliver ~rec.LastIndex entries; with
	// compaction only the WAL suffix above the snapshot can reappear.
	if red := c.ReplicaAt(victim).Redelivered(); red > every {
		t.Fatalf("catch-up replayed compacted entries: redelivered=%d (> interval %d)", red, every)
	}
	if !c.Converged() {
		t.Fatalf("diverged after snapshot recovery: %v", c.StateHashes())
	}

	// Golden check: the recovered state must hash identically to a
	// fault-free, snapshot-free reference run of the same workload.
	ref, err := NewCluster(clusterConfig(t, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Stop()
	submitDeposits(t, ref, 0, 16)
	if got, want := c.ReplicaAt(victim).StateHash(), ref.ReplicaAt(0).StateHash(); got != want {
		t.Fatalf("snapshot-recovered state %x != fault-free reference %x", got, want)
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
}

// TestClusterInstallSnapshotCatchUp exercises the leader->follower snapshot
// path: a follower that crashed BEFORE the cluster's snapshots were taken
// needs entries the leader has compacted away, so catch-up must arrive as an
// InstallSnapshot, not entry replay.
func TestClusterInstallSnapshotCatchUp(t *testing.T) {
	const every = 4
	cfg := clusterConfig(t, 3, nil)
	cfg.DataDir = t.TempDir()
	cfg.SnapshotEvery = every
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	submitDeposits(t, c, 0, 2) // victim applies only indices 1-2
	li, err := c.WaitLeader(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	victim := (li + 1) % c.Size()
	if err := c.Crash(victim); err != nil {
		t.Fatal(err)
	}
	// Push the survivors far past several snapshot intervals so their logs
	// no longer contain the entries the victim needs.
	submitDeposits(t, c, 2, 12)
	li2, err := c.WaitLeader(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitSnapshot(li2, 2*every, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Restart(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCaughtUp(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if inst := c.ReplicaAt(victim).SnapshotsInstalled(); inst < 1 {
		t.Fatalf("far-behind follower caught up without InstallSnapshot (installed=%d)", inst)
	}
	if !c.Converged() {
		t.Fatalf("diverged after snapshot install: %v", c.StateHashes())
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
}

// TestClusterChunkedInstallSnapshotCrashResume is the chunked-transfer
// acceptance test: with the chunk size forced far below the snapshot size,
// a far-behind follower is crashed WHILE the leader is streaming chunks to
// it. After the second restart the transfer must start over from the
// follower's (empty) cursor, complete, and converge to the leader's state
// hash.
func TestClusterChunkedInstallSnapshotCrashResume(t *testing.T) {
	const every = 4
	cfg := clusterConfig(t, 3, nil)
	cfg.DataDir = t.TempDir()
	cfg.SnapshotEvery = every
	cfg.Raft.SnapshotChunkSize = 64 // store snapshots run ~0.5-1 KiB
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	submitDeposits(t, c, 0, 2) // victim applies only indices 1-2
	li, err := c.WaitLeader(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	victim := (li + 1) % c.Size()
	if err := c.Crash(victim); err != nil {
		t.Fatal(err)
	}
	// Push the survivors past several snapshot intervals so the victim can
	// only catch up via an InstallSnapshot.
	submitDeposits(t, c, 2, 12)
	li2, err := c.WaitLeader(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WaitSnapshot(li2, 2*every, 10*time.Second); err != nil {
		t.Fatal(err)
	}

	totalChunks := func() int64 {
		var n int64
		for i := 0; i < c.Size(); i++ {
			n += c.Nodes[i].ChunksSent()
		}
		return n
	}
	// Slow the fabric so the multi-chunk transfer is observable, rejoin the
	// victim, and crash it again as soon as chunks are in flight.
	c.SetDelay(1*time.Millisecond, 3*time.Millisecond)
	if err := c.Restart(victim); err != nil {
		t.Fatal(err)
	}
	started := time.Now()
	for totalChunks() == 0 {
		if time.Since(started) > 5*time.Second {
			t.Fatal("no snapshot chunks sent within 5s of victim rejoin")
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.Crash(victim); err != nil {
		t.Fatal(err)
	}
	midCrashChunks := totalChunks()

	c.SetDelay(0, 0)
	if err := c.Restart(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCaughtUp(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if inst := c.ReplicaAt(victim).SnapshotsInstalled(); inst < 1 {
		t.Fatalf("victim caught up without InstallSnapshot (installed=%d)", inst)
	}
	// The restarted transfer re-streams from the follower's empty cursor, so
	// more chunks flow after the mid-transfer crash.
	if got := totalChunks(); got <= midCrashChunks {
		t.Fatalf("no chunk traffic after mid-transfer crash (before=%d after=%d)", midCrashChunks, got)
	}
	if !c.Converged() {
		t.Fatalf("diverged after crash-resumed chunked install: %v", c.StateHashes())
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
}

// tpccClusterConfig builds a tiny TPC-C deployment (1 warehouse, trimmed
// rows) whose executor factory repopulates the same initial state on every
// (re)start, as snapshot + WAL recovery requires.
func tpccClusterConfig(t testing.TB, replicas int) ClusterConfig {
	t.Helper()
	wcfg := tpcc.Config{
		Warehouses: 1, Items: 20, CustomersPerDistrict: 5,
		OrderLinesMin: 5, OrderLinesMax: 5,
	}
	schema := tpcc.Schema()
	reg, err := engine.NewRegistry(schema, tpcc.NewOrderProg(wcfg), tpcc.PaymentProg(wcfg))
	if err != nil {
		t.Fatal(err)
	}
	return ClusterConfig{
		Replicas: replicas,
		Seed:     7,
		NewExecutor: func(id string, st *store.Store) (engine.Executor, error) {
			tpcc.Populate(st, wcfg)
			return engine.New(reg, st, engine.Config{Workers: 2}), nil
		},
	}
}

// submitTPCC pushes n batches of deterministic newOrder/payment mixes.
func submitTPCC(t *testing.T, c *Cluster, start, n int) {
	t.Helper()
	for b := start; b < start+n; b++ {
		var reqs []struct {
			TxName string
			Inputs map[string]value.Value
		}
		for i := 0; i < 4; i++ {
			k := b*4 + i
			if k%3 == 0 {
				reqs = append(reqs, struct {
					TxName string
					Inputs map[string]value.Value
				}{TxName: "payment", Inputs: map[string]value.Value{
					"wId": value.Int(1), "dId": value.Int(int64(1 + k%10)),
					"cWId": value.Int(1), "cDId": value.Int(int64(1 + k%10)),
					"cId":  value.Int(int64(1 + k%5)), "amount": value.Int(int64(1 + k%9)),
				}})
				continue
			}
			ol := func(off int) value.Value { return value.Int(int64(1 + (k+off)%20)) }
			reqs = append(reqs, struct {
				TxName string
				Inputs map[string]value.Value
			}{TxName: "newOrder", Inputs: map[string]value.Value{
				"wId": value.Int(1), "dId": value.Int(int64(1 + k%10)),
				"cId": value.Int(int64(1 + k%5)), "olCnt": value.Int(5),
				"olIds":     value.List(ol(0), ol(3), ol(7), ol(11), ol(13)),
				"olSupplyW": value.List(value.Int(1), value.Int(1), value.Int(1), value.Int(1), value.Int(1)),
				"olQty":     value.List(value.Int(1), value.Int(2), value.Int(3), value.Int(4), value.Int(5)),
			}})
		}
		if err := c.SubmitBatch(reqs, 20*time.Second); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTPCCSnapshotRecoveryGolden is the snapshot round-trip golden test on
// the TPC-C workload: snapshot -> compact -> crash -> restart must hash
// identically to a fault-free reference run.
func TestTPCCSnapshotRecoveryGolden(t *testing.T) {
	const every = 3
	cfg := tpccClusterConfig(t, 3)
	cfg.DataDir = t.TempDir()
	cfg.SnapshotEvery = every
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	submitTPCC(t, c, 0, 10) // snapshots at 3, 6, 9
	li, err := c.WaitLeader(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	victim := (li + 1) % c.Size()
	if err := c.WaitSnapshot(victim, 3*every, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Crash(victim); err != nil {
		t.Fatal(err)
	}
	submitTPCC(t, c, 10, 2)
	if err := c.Restart(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCaughtUp(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	rec := c.LastRecovery(victim)
	if !rec.FromSnapshot || rec.SnapshotIndex < 3*every {
		t.Fatalf("recovery not snapshot-seeded: %+v", rec)
	}
	if red := c.ReplicaAt(victim).Redelivered(); red > every {
		t.Fatalf("catch-up replayed compacted entries: redelivered=%d", red)
	}
	if !c.Converged() {
		t.Fatalf("diverged: %v", c.StateHashes())
	}

	ref, err := NewCluster(tpccClusterConfig(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Stop()
	submitTPCC(t, ref, 0, 12)
	if got, want := c.ReplicaAt(victim).StateHash(), ref.ReplicaAt(0).StateHash(); got != want {
		t.Fatalf("snapshot-recovered TPC-C state %x != fault-free reference %x", got, want)
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
}

package replica

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"prognosticator/internal/engine"
	"prognosticator/internal/raft"
	"prognosticator/internal/sequencer"
	"prognosticator/internal/store"
)

// countingExec is a deterministic fake executor that counts how many times
// each transaction name was executed — the observable the dedup property
// checks against.
type countingExec struct {
	mu     sync.Mutex
	counts map[string]int
}

func newCountingExec() *countingExec { return &countingExec{counts: map[string]int{}} }

func (e *countingExec) Name() string { return "counting" }

func (e *countingExec) ExecuteBatch(batch []engine.Request) (*engine.BatchResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, r := range batch {
		e.counts[r.TxName]++
	}
	return &engine.BatchResult{}, nil
}

func (e *countingExec) count(tx string) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.counts[tx]
}

// dedupSchedule is one randomized committed sequence: every batch ID appears
// at 1-3 distinct raft indices (the first occurrence is the real commit, the
// rest are ambiguous resubmissions that also committed).
type dedupSchedule struct {
	events []string // events[i] = batch ID committed at raft index i+1
	first  map[string]uint64
	last   map[string]uint64
}

func genSchedule(rng *rand.Rand) dedupSchedule {
	n := 5 + rng.Intn(20)
	var events []string
	for k := 0; k < n; k++ {
		id := fmt.Sprintf("batch-%d", k)
		for o := 0; o < 1+rng.Intn(3); o++ {
			events = append(events, id)
		}
	}
	rng.Shuffle(len(events), func(i, j int) { events[i], events[j] = events[j], events[i] })
	s := dedupSchedule{events: events, first: map[string]uint64{}, last: map[string]uint64{}}
	for i, id := range events {
		idx := uint64(i + 1)
		if _, ok := s.first[id]; !ok {
			s.first[id] = idx
		}
		s.last[id] = idx
	}
	return s
}

// safeWatermark reports whether wm is a valid acknowledgment point: no ID
// acknowledged at or below wm may still have a committed duplicate above it.
// (The cluster guarantees this by acking at the leader's commit index under
// serial submission; the property test enumerates the same invariant.)
func (s dedupSchedule) safeWatermark(wm uint64) bool {
	for id, f := range s.first {
		if f <= wm && s.last[id] > wm {
			return false
		}
	}
	return true
}

// liveAbove counts distinct IDs first applied above wm among indices <= upto —
// exactly the entries the dedup table must still hold after pruning at wm.
func (s dedupSchedule) liveAbove(wm, upto uint64) int {
	n := 0
	for _, f := range s.first {
		if f > wm && f <= upto {
			n++
		}
	}
	return n
}

// TestDedupExactlyOnceProperty is the randomized property test for batch-ID
// deduplication: across random interleavings of duplicate SubmitBatch
// re-proposals, every batch executes exactly once, the watermark only moves
// forward, and watermark pruning keeps the dedup table at exactly the set of
// unacknowledged IDs (zero once everything is acknowledged).
func TestDedupExactlyOnceProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			s := genSchedule(rng)
			exec := newCountingExec()
			r := New("prop", exec, store.New(), nil)

			lastWM := uint64(0)
			for i, id := range s.events {
				idx := uint64(i + 1)
				data, err := sequencer.EncodeBatchID(id, []engine.Request{{TxName: id}})
				if err != nil {
					t.Fatal(err)
				}
				if err := r.applyOne(raft.Committed{Index: idx, Term: 1, Cmd: data}); err != nil {
					t.Fatal(err)
				}
				// At random safe points, acknowledge through idx — exactly
				// what ackWatermark does at the leader's commit index.
				if rng.Intn(3) == 0 && s.safeWatermark(idx) {
					r.SetDedupWatermark(idx)
					wm := r.DedupWatermark()
					if wm < lastWM {
						t.Fatalf("watermark moved backward: %d -> %d", lastWM, wm)
					}
					lastWM = wm
					if got, want := r.DedupSize(), s.liveAbove(wm, idx); got != want {
						t.Fatalf("after ack at %d: dedup table has %d entries, want %d", idx, got, want)
					}
				}
			}

			// Exactly-once: every ID executed once regardless of duplicates.
			for id := range s.first {
				if got := exec.count(id); got != 1 {
					t.Fatalf("batch %s executed %d times, want exactly 1", id, got)
				}
			}
			if got, want := r.Deduped(), len(s.events)-len(s.first); got != want {
				t.Fatalf("deduped = %d, want %d (duplicate occurrences)", got, want)
			}

			// A stale watermark must not move the mark backward.
			r.SetDedupWatermark(lastWM / 2)
			if r.DedupWatermark() != lastWM {
				t.Fatalf("stale watermark lowered the mark to %d", r.DedupWatermark())
			}

			// Final acknowledgment empties the table: dedup memory is bounded
			// by the ack horizon, not by deployment lifetime.
			final := uint64(len(s.events))
			r.SetDedupWatermark(final)
			if r.DedupWatermark() != final {
				t.Fatalf("final watermark = %d, want %d", r.DedupWatermark(), final)
			}
			if r.DedupSize() != 0 {
				t.Fatalf("dedup table holds %d entries after full acknowledgment", r.DedupSize())
			}
		})
	}
}

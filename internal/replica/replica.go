// Package replica ties the pieces into a System Replica (paper Fig. 1): a
// Raft node delivering ordered batches, a deterministic executor applying
// them, an optional write-ahead log for durability, and a state hash for
// divergence detection. A Cluster helper assembles a full in-process
// deployment (N replicas + dispatchers) for the examples, tests and
// cmd/replicad — including per-replica crash and rejoin: a crashed node's
// store is rebuilt from its newest snapshot plus the WAL suffix above it,
// then caught up through Raft to the live commit index, while apply-time
// batch-ID deduplication makes client resubmission after an ambiguous leader
// change idempotent. With snapshots enabled a replica periodically captures
// its store (see snapshot.go), compacts its raft log below the snapshot
// index, and prunes acknowledged entries from the dedup table, so recovery
// time, log size and dedup memory all stay bounded in a long-lived
// deployment.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"prognosticator/internal/engine"
	"prognosticator/internal/flowctl"
	"prognosticator/internal/memnet"
	"prognosticator/internal/raft"
	"prognosticator/internal/sequencer"
	"prognosticator/internal/store"
	"prognosticator/internal/tcpnet"
	"prognosticator/internal/value"
	"prognosticator/internal/vclock"
	"prognosticator/internal/wal"
)

// Replica applies committed batches to a deterministic executor.
type Replica struct {
	ID   string
	exec engine.Executor
	st   *store.Store
	log  *wal.Log // nil disables durability
	clk  vclock.Clock

	// onApply, when non-nil, observes every non-duplicate batch application
	// (index, batch ID, requests, outcomes) from the apply loop — the history
	// recorder's tap. Set before Start.
	onApply func(index uint64, id string, reqs []engine.Request, res *engine.BatchResult)

	mu          sync.Mutex
	lastApplied uint64 // raft index of last applied batch
	batches     int
	// appliedIDs maps each applied batch's idempotency ID to the raft index
	// of its first (and only executed) occurrence. Rebuilt from the WAL on
	// recovery, so deduplication decisions are identical across crashes and
	// across replicas: every replica sees the same committed sequence and
	// skips the same duplicates.
	appliedIDs  map[string]uint64
	deduped     int // duplicate batches skipped (idempotent resubmission)
	redelivered int // already-applied entries re-delivered by raft after restart

	// dedupWM is the acknowledged low-water mark: every ID first applied at
	// an index <= dedupWM has been acknowledged to its client, so no further
	// committed occurrence of it can exist and its dedup entry can go.
	// Pruning waits until lastApplied >= dedupWM — a duplicate occurrence
	// can commit anywhere up to the watermark.
	dedupWM    uint64
	dedupDirty bool

	snapCfg   SnapshotConfig
	lastSnap  uint64 // raft index of the newest taken or installed snapshot
	snapTaken int
	installed int // snapshots installed from a leader's InstallSnapshot

	// applyDelay throttles the apply loop (nanoseconds per batch) — the
	// chaos slow-apply fault: a replica that falls behind without crashing.
	applyDelay atomic.Int64

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	// runDone flips when the apply loop returns; under the cooperative
	// scheduler Stop awaits it before wg.Wait (see raft.Node.Stop).
	runDone atomic.Bool
}

// SnapshotConfig enables periodic store snapshotting on a replica.
type SnapshotConfig struct {
	// Every takes a snapshot each time this many raft entries have been
	// applied since the last one (0 disables snapshotting).
	Every uint64
	// Dir is where encoded snapshot files land (required when the replica
	// also has a WAL: after a snapshot the WAL prefix is dropped, so
	// recovery depends on the snapshot file being there).
	Dir string
	// Compact, when non-nil, is invoked (asynchronously) with each new
	// snapshot so the consensus log can truncate below it — wire it to
	// raft.Node.Compact.
	Compact func(index uint64, data []byte) error
}

// EnableSnapshots configures periodic snapshotting. Must be called before
// Start.
func (r *Replica) EnableSnapshots(cfg SnapshotConfig) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.snapCfg = cfg
}

// New returns a replica applying batches through exec. wlog may be nil.
func New(id string, exec engine.Executor, st *store.Store, wlog *wal.Log) *Replica {
	return &Replica{
		ID: id, exec: exec, st: st, log: wlog, clk: vclock.Wall,
		appliedIDs: map[string]uint64{},
		stopCh:     make(chan struct{}),
	}
}

// SetClock sets the replica's time source (default: wall clock). Must be
// called before Start.
func (r *Replica) SetClock(clk vclock.Clock) { r.clk = vclock.Or(clk) }

// OnApply registers an observer called from the apply loop for every
// non-duplicate batch application, in apply order. Must be set before Start.
// Duplicate and re-delivered batches are not reported — the observer sees
// exactly the executed history.
func (r *Replica) OnApply(fn func(index uint64, id string, reqs []engine.Request, res *engine.BatchResult)) {
	r.onApply = fn
}

// Resume seeds the replica's apply position from a recovery, so that Raft's
// re-delivery of committed entries above the snapshot index skips everything
// the recovered store already contains. Must be called before Start.
func (r *Replica) Resume(rep RecoveryReport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lastApplied = rep.LastIndex
	r.batches = rep.Batches
	r.lastSnap = rep.SnapshotIndex
	r.dedupWM = rep.Watermark
	for id, idx := range rep.AppliedIDs {
		r.appliedIDs[id] = idx
	}
}

// applyPollInterval is the simulated-clock apply loop's drain cadence in
// virtual time. Records on the apply channel carry no event tokens (see
// raft.Node.deliverLocked), so under a simulated clock the loop polls:
// consumption is scheduled by timers and a throttled (SetApplyDelay)
// straggler's backlog cannot freeze virtual time.
const applyPollInterval = 200 * time.Microsecond

// Start launches the apply loop consuming committed entries.
func (r *Replica) Start(applyCh <-chan raft.Committed, onError func(error)) {
	r.wg.Add(1)
	if vclock.Scheduled(r.clk) {
		vclock.GoNamed(r.clk, "apply:"+r.ID, func() { r.runSchedApply(applyCh, onError) })
		return
	}
	if vclock.IsSim(r.clk) {
		vclock.Hold(r.clk) // run token, transferred to the loop goroutine
		go r.runSimApply(applyCh, onError)
		return
	}
	go r.runWallApply(applyCh, onError)
}

// runWallApply blocks on the apply channel directly (real time).
func (r *Replica) runWallApply(applyCh <-chan raft.Committed, onError func(error)) {
	defer r.wg.Done()
	defer r.runDone.Store(true)
	for {
		select {
		case <-r.stopCh:
			return
		case c := <-applyCh:
			if err := r.applyOne(c); err != nil {
				if onError != nil {
					onError(err)
				}
				return
			}
		}
	}
}

// runSimApply drains the apply channel on a virtual-time poll tick. Between
// ticks the goroutine parks, so all pending timers (including this loop's
// own tick) can fire; stop is honored immediately even while parked, which
// keeps crash-stop independent of virtual time advancing.
// runSchedApply drains the apply channel under the cooperative scheduler:
// one committed record per iteration (each apply is followed by a Yield so
// the picker controls interleaving), parking idle when the channel is
// empty. Raft's deliverLocked publishes on every enqueue, so the actor is
// re-readied promptly; stop is polled first, so crash-stop needs no pending
// events to make progress.
func (r *Replica) runSchedApply(applyCh <-chan raft.Committed, onError func(error)) {
	defer r.wg.Done()
	defer r.runDone.Store(true)
	for {
		select {
		case <-r.stopCh:
			return
		default:
		}
		select {
		case c := <-applyCh:
			if err := r.applyOne(c); err != nil {
				if onError != nil {
					onError(err)
				}
				return
			}
			vclock.Yield(r.clk)
		default:
			vclock.Idle(r.clk)
		}
	}
}

func (r *Replica) runSimApply(applyCh <-chan raft.Committed, onError func(error)) {
	defer r.wg.Done()
	defer r.runDone.Store(true)
	defer vclock.Release(r.clk)
	for {
		for {
			select {
			case <-r.stopCh:
				return
			case c := <-applyCh:
				if err := r.applyOne(c); err != nil {
					if onError != nil {
						onError(err)
					}
					return
				}
				continue
			default:
			}
			break
		}
		// The poll timer is armed ONLY while parked: applyOne may sleep in
		// virtual time (SetApplyDelay), and an armed timer firing unread
		// during that sleep would hold its fire token and freeze the clock.
		tm := r.clk.NewTimer(applyPollInterval)
		vclock.Park(r.clk)
		select {
		case <-r.stopCh:
			vclock.Wake(r.clk)
			tm.Stop()
			return
		case <-tm.C():
			vclock.Wake(r.clk)
			vclock.Ack(r.clk) // retire the tick's fire token
		}
	}
}

// Stop terminates the apply loop.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() { close(r.stopCh) })
	// Under the cooperative scheduler, let the loop actor observe the stop
	// and exit before blocking the baton on wg.Wait.
	vclock.Await(r.clk, r.runDone.Load)
	r.wg.Wait()
}

// SetApplyDelay throttles the apply loop: every batch apply sleeps d first
// (0 restores full speed). Safe to call while the loop runs.
func (r *Replica) SetApplyDelay(d time.Duration) {
	r.applyDelay.Store(int64(d))
}

func (r *Replica) applyOne(c raft.Committed) error {
	if d := time.Duration(r.applyDelay.Load()); d > 0 {
		r.clk.Sleep(d)
	}
	if c.Snapshot != nil {
		return r.installSnapshot(c)
	}
	b, err := sequencer.DecodeBatch(c)
	if err != nil {
		return fmt.Errorf("replica %s: %w", r.ID, err)
	}
	r.mu.Lock()
	if c.Index <= r.lastApplied {
		// Raft re-delivers the uncompacted suffix after a restart; the
		// recovered prefix is already in the store.
		r.redelivered++
		r.mu.Unlock()
		return nil
	}
	if b.ID != "" {
		if _, dup := r.appliedIDs[b.ID]; dup {
			// A resubmitted batch committed twice (ambiguous leader change
			// mid-submit): execute the first occurrence only. The duplicate
			// is not WAL-logged either, so recovery replays it exactly once.
			r.deduped++
			r.lastApplied = c.Index
			r.pruneDedupLocked()
			r.mu.Unlock()
			return nil
		}
	}
	r.mu.Unlock()
	// Durability first: log the ordered batch (with its raft index, so
	// recovery reconstructs identical sequence numbers), then apply.
	// Recovery replays the log through a fresh engine; determinism
	// guarantees the same end state.
	if r.log != nil {
		if err := r.log.Append(envelope(c.Index, c.Cmd)); err != nil {
			return fmt.Errorf("replica %s: wal: %w", r.ID, err)
		}
	}
	res, err := r.exec.ExecuteBatch(b.Requests)
	if err != nil {
		return fmt.Errorf("replica %s: apply batch %d: %w", r.ID, c.Index, err)
	}
	if r.onApply != nil {
		r.onApply(c.Index, b.ID, b.Requests, res)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lastApplied = c.Index
	r.batches++
	if b.ID != "" {
		r.appliedIDs[b.ID] = c.Index
	}
	r.pruneDedupLocked()
	if r.snapCfg.Every > 0 && r.lastApplied >= r.lastSnap+r.snapCfg.Every {
		if err := r.snapshotLocked(); err != nil {
			return fmt.Errorf("replica %s: snapshot at %d: %w", r.ID, c.Index, err)
		}
	}
	return nil
}

// snapshotLocked captures the store at the current apply position, persists
// the snapshot, drops the now-redundant WAL prefix, and hands the snapshot
// to the consensus layer for log compaction. Called from the apply loop, so
// the store is quiescent. The raft Compact call runs on its own goroutine:
// raft delivers committed entries while holding its lock, so calling back
// into it synchronously from the apply loop could deadlock on a full apply
// channel.
func (r *Replica) snapshotLocked() error {
	snap := &StoreSnapshot{
		Index:      r.lastApplied,
		Batches:    r.batches,
		Watermark:  r.dedupWM,
		AppliedIDs: make(map[string]uint64, len(r.appliedIDs)),
	}
	for id, idx := range r.appliedIDs {
		snap.AppliedIDs[id] = idx
	}
	snap.Pairs = CaptureStore(r.st)
	encoded, err := EncodeSnapshot(snap)
	if err != nil {
		return err
	}
	if r.snapCfg.Dir != "" {
		if err := WriteSnapshotFile(r.snapCfg.Dir, snap.Index, encoded); err != nil {
			return err
		}
		if r.log != nil {
			// Every WAL record is now <= snap.Index and covered by the
			// durable snapshot file: rotate and drop the old segments.
			if err := r.log.Rotate(); err != nil {
				return fmt.Errorf("wal rotate: %w", err)
			}
			if err := r.log.DropSegmentsBelow(r.log.CurrentSegment()); err != nil {
				return fmt.Errorf("wal compact: %w", err)
			}
		}
	}
	r.lastSnap = snap.Index
	r.snapTaken++
	if compact := r.snapCfg.Compact; compact != nil {
		idx := snap.Index
		// Under the cooperative scheduler this spawns a (short-lived) actor,
		// so compaction timing — which decides whether a lagging follower is
		// caught up by entry replay or InstallSnapshot — replays from the
		// seed instead of racing the apply loop.
		vclock.GoNamed(r.clk, "compact:"+r.ID, func() { _ = compact(idx, encoded) })
	}
	return nil
}

// installSnapshot restores the store from a leader-shipped snapshot — the
// catch-up path for a replica so far behind that the entries it needs were
// compacted away.
func (r *Replica) installSnapshot(c raft.Committed) error {
	r.mu.Lock()
	if c.Index <= r.lastApplied {
		r.redelivered++
		r.mu.Unlock()
		return nil
	}
	r.mu.Unlock()
	snap, err := DecodeSnapshot(c.Snapshot)
	if err != nil {
		return fmt.Errorf("replica %s: install snapshot at %d: %w", r.ID, c.Index, err)
	}
	RestoreStore(r.st, snap)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.snapCfg.Dir != "" {
		// Persist the installed snapshot so a crash right after install
		// recovers from it, then drop the stale WAL prefix (every record
		// is below the snapshot index).
		if err := WriteSnapshotFile(r.snapCfg.Dir, snap.Index, c.Snapshot); err != nil {
			return fmt.Errorf("replica %s: install snapshot at %d: %w", r.ID, c.Index, err)
		}
		if r.log != nil {
			if err := r.log.Rotate(); err != nil {
				return fmt.Errorf("replica %s: install snapshot: wal rotate: %w", r.ID, err)
			}
			if err := r.log.DropSegmentsBelow(r.log.CurrentSegment()); err != nil {
				return fmt.Errorf("replica %s: install snapshot: wal compact: %w", r.ID, err)
			}
		}
	}
	r.lastApplied = c.Index
	r.batches = snap.Batches
	r.appliedIDs = make(map[string]uint64, len(snap.AppliedIDs))
	for id, idx := range snap.AppliedIDs {
		r.appliedIDs[id] = idx
	}
	if snap.Watermark > r.dedupWM {
		r.dedupWM = snap.Watermark
	}
	r.lastSnap = c.Index
	r.installed++
	return nil
}

// SetDedupWatermark raises the acknowledged low-water mark: the caller
// asserts that every batch ID first applied at an index <= wm has been
// acknowledged to its client, so no further committed occurrence of it can
// appear and its dedup entry may be dropped once this replica has applied
// through wm.
func (r *Replica) SetDedupWatermark(wm uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if wm > r.dedupWM {
		r.dedupWM = wm
		r.dedupDirty = true
	}
	r.pruneDedupLocked()
}

func (r *Replica) pruneDedupLocked() {
	if !r.dedupDirty || r.lastApplied < r.dedupWM {
		return
	}
	for id, idx := range r.appliedIDs {
		if idx <= r.dedupWM {
			delete(r.appliedIDs, id)
		}
	}
	r.dedupDirty = false
}

// AppliedID reports whether a batch with the given idempotency ID has been
// applied by this replica (and not yet pruned past the dedup watermark).
func (r *Replica) AppliedID(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.appliedIDs[id]
	return ok
}

// LastApplied returns the Raft index of the last applied batch.
func (r *Replica) LastApplied() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastApplied
}

// Batches returns the number of batches this replica's store state
// reflects: batches executed live plus batches replayed from the WAL at
// recovery. Duplicates and re-deliveries are never counted, so under an
// exactly-once workload this equals the number of distinct submitted
// batches.
func (r *Replica) Batches() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.batches
}

// Deduped returns how many duplicate batch resubmissions were skipped.
func (r *Replica) Deduped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deduped
}

// Redelivered returns how many already-applied entries Raft re-delivered
// (the catch-up prefix after a restart).
func (r *Replica) Redelivered() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.redelivered
}

// DedupSize returns the number of live entries in the dedup table — bounded
// by watermark pruning, not by deployment lifetime.
func (r *Replica) DedupSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.appliedIDs)
}

// DedupWatermark returns the acknowledged low-water mark.
func (r *Replica) DedupWatermark() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dedupWM
}

// Snapshots returns how many snapshots this replica captured itself.
func (r *Replica) Snapshots() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapTaken
}

// SnapshotsInstalled returns how many leader-shipped snapshots were
// installed (far-behind catch-up).
func (r *Replica) SnapshotsInstalled() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.installed
}

// StateHash returns the order-independent hash of the replica's current
// store state.
func (r *Replica) StateHash() uint64 { return r.st.StateHash(r.st.Epoch()) }

// --- WAL record envelope ---

// Replica WAL records are framed as an 8-byte little-endian raft index
// followed by the committed batch payload. Persisting the index keeps
// recovered sequence numbers (derived from the index) identical to the
// original execution even when deduplicated batches leave gaps in the
// logged index sequence.
const envelopeHeader = 8

func envelope(idx uint64, cmd []byte) []byte {
	out := make([]byte, envelopeHeader+len(cmd))
	binary.LittleEndian.PutUint64(out[:envelopeHeader], idx)
	copy(out[envelopeHeader:], cmd)
	return out
}

func parseEnvelope(payload []byte) (uint64, []byte, error) {
	if len(payload) < envelopeHeader {
		return 0, nil, fmt.Errorf("replica: wal record too short (%d bytes)", len(payload))
	}
	return binary.LittleEndian.Uint64(payload[:envelopeHeader]), payload[envelopeHeader:], nil
}

// RecoveryReport summarizes a recovery: what was restored and replayed, and
// what, if anything, a corrupted tail cost.
type RecoveryReport struct {
	// Batches is the number of batches the recovered store reflects:
	// snapshot batches plus WAL-suffix batches replayed into the executor.
	Batches int
	// LastIndex is the raft index of the last recovered batch (the resume
	// point: Raft redelivery catches the replica up from here).
	LastIndex uint64
	// FromSnapshot reports whether a snapshot seeded the store; if so
	// SnapshotIndex is its raft index and only WAL records above it were
	// replayed.
	FromSnapshot  bool
	SnapshotIndex uint64
	// Watermark is the recovered dedup low-water mark.
	Watermark uint64
	// AppliedIDs maps recovered batch idempotency IDs to their raft index.
	AppliedIDs map[string]uint64
	// WAL reports the physical repair: whether a torn or corrupted tail was
	// truncated and how many bytes of unreplayable suffix were discarded
	// (those batches are re-fetched through Raft, not lost).
	WAL wal.Stats
}

// Recover rebuilds the store state of a crashed replica by replaying its WAL
// directory through exec. The log is first repaired — truncated at the first
// torn or corrupted record — so the surviving prefix is exactly what is
// replayed and subsequent appends extend a verified-clean log. The report
// says how many batches were replayed, where to resume, and how much the
// corruption (if any) cost.
func Recover(dir string, exec engine.Executor) (RecoveryReport, error) {
	return RecoverWithSnapshot(dir, "", exec, nil)
}

// RecoverWithSnapshot is Recover preferring snapshot + WAL-suffix recovery:
// if snapDir holds a parseable snapshot, the store is restored from it and
// only WAL records ABOVE the snapshot index are replayed through exec —
// recovery work is bounded by the snapshot interval, not the deployment
// lifetime. With no usable snapshot (or snapDir == "") the whole WAL is
// replayed, exactly like Recover.
func RecoverWithSnapshot(walDir, snapDir string, exec engine.Executor, st *store.Store) (RecoveryReport, error) {
	rep := RecoveryReport{AppliedIDs: map[string]uint64{}}
	if snap, err := LoadSnapshotFile(snapDir); err == nil && snap != nil && st != nil {
		RestoreStore(st, snap)
		rep.FromSnapshot = true
		rep.SnapshotIndex = snap.Index
		rep.LastIndex = snap.Index
		rep.Batches = snap.Batches
		rep.Watermark = snap.Watermark
		for id, idx := range snap.AppliedIDs {
			rep.AppliedIDs[id] = idx
		}
	}
	stats, err := wal.Repair(walDir)
	if err != nil {
		return rep, fmt.Errorf("replica: recover repair: %w", err)
	}
	rep.WAL = stats
	err = wal.Replay(walDir, func(payload []byte) error {
		idx, cmd, err := parseEnvelope(payload)
		if err != nil {
			return err
		}
		if rep.FromSnapshot && idx <= rep.SnapshotIndex {
			// Covered by the snapshot (a prefix the compaction had not
			// dropped yet): skip, don't double-apply.
			return nil
		}
		b, err := sequencer.DecodeBatch(raft.Committed{Index: idx, Cmd: cmd})
		if err != nil {
			return err
		}
		if _, err := exec.ExecuteBatch(b.Requests); err != nil {
			return err
		}
		rep.Batches++
		rep.LastIndex = idx
		if b.ID != "" {
			rep.AppliedIDs[b.ID] = idx
		}
		return nil
	})
	if err != nil {
		return rep, fmt.Errorf("replica: recover: %w", err)
	}
	return rep, nil
}

// Cluster is an in-process deployment: N Raft nodes, one replica each, and
// a dispatcher per node. It is the top-level object the examples, tests,
// cmd/replicad and the chaos harness drive. Consensus traffic flows over
// simulated channels (memnet, the default) or real loopback TCP sockets
// (tcpnet). With DataDir set, every node persists its Raft state and its
// replica WAL, enabling per-replica Crash and Restart.
//
// The exported slices are stable for the lifetime of the cluster object;
// their ELEMENTS are replaced by Restart. Code that may run concurrently
// with crash/restart (the chaos harness, SubmitBatch retries) must use the
// accessor methods, which lock.
type Cluster struct {
	Net         *memnet.Network // nil when running over TCP
	Endpoints   []*tcpnet.Endpoint
	Nodes       []*raft.Node
	Replicas    []*Replica
	Dispatchers []*sequencer.Dispatcher

	cfg      ClusterConfig
	clk      vclock.Clock
	ids      []string
	dataDir  string
	idPrefix string // boot nonce making batch IDs unique across cluster lifetimes
	tcpDir   *tcpnet.Directory

	flow *flowctl.Controller

	mu          sync.Mutex
	down        []bool
	generations []int
	storages    []*raft.FileStorage
	wlogs       []*wal.Log
	recoveries  []RecoveryReport
	batchSeq    uint64
	applyDelays []time.Duration // reapplied on Restart (slow-apply fault)
	lossProb    float64         // fault state reapplied to restarted endpoints
	delayMin    time.Duration
	delayMax    time.Duration

	// floors tracks, per in-flight or abandoned batch ID, the leader commit
	// index observed just before its FIRST proposal. By leader completeness
	// every committed occurrence of that ID sits at an index above its floor,
	// so min(floors) bounds how far the dedup watermark may advance while
	// submissions run concurrently (see ackCommit).
	floorMu sync.Mutex
	floors  map[string]*submitFloor

	errMu sync.Mutex
	err   error
}

// submitFloor is the dedup-safety record for one submitted batch ID.
type submitFloor struct {
	// floor is the leader commit index read immediately before the first
	// proposal: every occurrence of the ID commits strictly above it.
	floor uint64
	// maxIdx is the highest raft index any proposal of this ID received.
	maxIdx uint64
	// zombie marks an abandoned submission (deadline or budget ran out after
	// a proposal): the client got an ambiguous error and will not resubmit,
	// but an occurrence may still commit. The floor must keep holding the
	// watermark back until the leader's commit index passes maxIdx — beyond
	// that point no occurrence can newly commit (entries at or below the
	// commit frontier are final; overwritten proposals can never win), so the
	// record can be dropped.
	zombie bool
}

// ClusterConfig configures NewCluster.
type ClusterConfig struct {
	Replicas int
	Seed     int64
	// NewExecutor builds each replica's executor over its private store. It
	// is called again on Restart: the factory must produce the same initial
	// state (e.g. the same Populate) so WAL replay rebuilds on top of it.
	NewExecutor func(replicaID string, st *store.Store) (engine.Executor, error)
	// Raft overrides the consensus timing (zero = defaults).
	Raft raft.Config
	// TCP routes consensus over real loopback sockets instead of the
	// in-process simulated network. Crash closes the node's endpoint;
	// Restart re-listens on a fresh port and the directory re-routes peers.
	TCP bool
	// SnapshotEvery, with DataDir set, makes each replica capture a store
	// snapshot every N applied entries, compact its raft log below it and
	// prune its WAL prefix (0 disables snapshotting).
	SnapshotEvery uint64
	// DataDir enables durability: node i persists its Raft state under
	// DataDir/<id>/raft and its replica WAL under DataDir/<id>/wal.
	// Required for Crash/Restart (a node restarting without persisted
	// term/vote could double-vote).
	DataDir string
	// WALSync selects the replica WAL fsync policy (default SyncOS: the
	// in-process fault model crashes goroutines, not machines).
	WALSync wal.SyncPolicy
	// QuorumSubmit makes SubmitBatch report success once a majority of
	// replicas applied the batch (the committed entry is durable; laggards
	// catch up through Raft). Default false waits for every live replica —
	// the right semantics when callers compare all state hashes immediately
	// after submit.
	QuorumSubmit bool
	// Flow is the admission/retry policy enforced on the submit path. The
	// zero value disables every limit (unbounded queues, unlimited retries),
	// preserving pre-flow-control behavior; Flow.Seed defaults to Seed so a
	// seeded cluster has fully deterministic backoff jitter.
	Flow flowctl.Config
	// SubmitWindow bounds how long one proposal is waited on before the
	// batch is re-proposed (idempotently) through the then-current leader
	// (default 2s). A proposal can be lost without any error signal when its
	// leader crashes after accepting it but before replicating it; chaos and
	// slow-apply scenarios tune this down to re-route faster.
	SubmitWindow time.Duration
	// Clock is the time source threaded through every layer: raft timers,
	// flow control, memnet delays, apply throttles, and all submit-path
	// deadlines. Nil uses the wall clock. A vclock.Sim clock runs the whole
	// cluster in virtual time, making a run a pure function of (Seed, config).
	// Not supported with TCP (real sockets need real time).
	Clock vclock.Clock
	// OnApply, when non-nil, observes every non-duplicate batch application
	// on every replica (the history recorder's tap): replica ID, raft index,
	// batch idempotency ID, the ordered requests and their outcomes.
	OnApply func(replicaID string, index uint64, batchID string, reqs []engine.Request, res *engine.BatchResult)
}

// NewCluster assembles and starts an in-process cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.NewExecutor == nil {
		return nil, fmt.Errorf("replica: cluster needs a NewExecutor factory")
	}
	if cfg.SubmitWindow == 0 {
		cfg.SubmitWindow = defaultSubmitWindow
	}
	if cfg.Flow.Seed == 0 {
		cfg.Flow.Seed = cfg.Seed
	}
	if cfg.TCP && vclock.IsSim(cfg.Clock) {
		return nil, fmt.Errorf("replica: simulated clock is not supported over TCP (real sockets need real time)")
	}
	clk := vclock.Or(cfg.Clock)
	if cfg.Flow.Clock == nil {
		cfg.Flow.Clock = clk
	}
	if cfg.Raft.Clock == nil {
		cfg.Raft.Clock = clk
	}
	c := &Cluster{
		cfg:     cfg,
		clk:     clk,
		dataDir: cfg.DataDir,
		// The boot nonce comes from the injected clock: under simulation the
		// virtual epoch is fixed, so batch IDs — and everything derived from
		// them — are identical across same-seed runs.
		idPrefix: fmt.Sprintf("%x", clk.Now().UnixNano()),
		flow:     flowctl.NewController(cfg.Flow),
		floors:   map[string]*submitFloor{},
	}
	n := cfg.Replicas
	c.ids = make([]string, n)
	for i := range c.ids {
		c.ids[i] = fmt.Sprintf("replica-%d", i)
	}
	c.Nodes = make([]*raft.Node, n)
	c.Replicas = make([]*Replica, n)
	c.Dispatchers = make([]*sequencer.Dispatcher, n)
	c.down = make([]bool, n)
	c.generations = make([]int, n)
	c.storages = make([]*raft.FileStorage, n)
	c.wlogs = make([]*wal.Log, n)
	c.recoveries = make([]RecoveryReport, n)
	c.applyDelays = make([]time.Duration, n)
	if cfg.TCP {
		tcpnet.Register(raft.WireTypes()...)
		c.tcpDir = tcpnet.NewDirectory()
		c.Endpoints = make([]*tcpnet.Endpoint, n)
	} else {
		c.Net = memnet.NewWithClock(cfg.Seed, clk)
	}
	for i := range c.ids {
		if err := c.startNode(i); err != nil {
			return nil, err
		}
	}
	for i := range c.Nodes {
		c.launch(i)
	}
	return c, nil
}

// startNode builds (or rebuilds, on restart) node i: transport endpoint,
// raft node with optional persistent storage, a fresh store recovered from
// the newest snapshot plus the WAL suffix above it, and a dispatcher. It
// does not start the event loops. Callers hold no cluster lock; the built
// components are installed under c.mu.
func (c *Cluster) startNode(i int) error {
	id := c.ids[i]
	c.mu.Lock()
	gen := c.generations[i]
	c.mu.Unlock()
	seed := c.cfg.Seed + int64(i)*7919 + int64(gen)*104729
	var node *raft.Node
	var ep *tcpnet.Endpoint
	if c.cfg.TCP {
		var err error
		ep, err = tcpnet.Listen(id, "127.0.0.1:0", c.tcpDir)
		if err != nil {
			return fmt.Errorf("replica: cluster transport for %s: %w", id, err)
		}
		node = raft.NewNodeWithTransport(id, c.ids, ep, c.cfg.Raft, seed)
	} else {
		node = raft.NewNode(id, c.ids, c.Net, c.cfg.Raft, seed)
	}
	fail := func(err error) error {
		if ep != nil {
			ep.Close()
		}
		return err
	}
	var storage *raft.FileStorage
	if c.dataDir != "" {
		stg, err := raft.OpenFileStorage(filepath.Join(c.dataDir, id, "raft"))
		if err != nil {
			return fail(fmt.Errorf("replica: cluster raft storage for %s: %w", id, err))
		}
		if err := node.UseStorage(stg); err != nil {
			_ = stg.Close()
			return fail(fmt.Errorf("replica: cluster raft storage for %s: %w", id, err))
		}
		storage = stg
	}
	st := store.New()
	exec, err := c.cfg.NewExecutor(id, st)
	if err != nil {
		if storage != nil {
			_ = storage.Close()
		}
		return fail(fmt.Errorf("replica: cluster executor for %s: %w", id, err))
	}
	var wlog *wal.Log
	var recovered RecoveryReport
	if c.dataDir != "" {
		wdir := c.WALDir(i)
		recovered, err = RecoverWithSnapshot(wdir, c.SnapDir(i), exec, st)
		if err != nil {
			_ = storage.Close()
			return fail(fmt.Errorf("replica: cluster recovery for %s: %w", id, err))
		}
		wlog, err = wal.Open(wdir, wal.Options{Sync: c.cfg.WALSync})
		if err != nil {
			_ = storage.Close()
			return fail(fmt.Errorf("replica: cluster wal for %s: %w", id, err))
		}
	}
	rep := New(id, exec, st, wlog)
	rep.SetClock(c.clk)
	if onApply := c.cfg.OnApply; onApply != nil {
		rep.OnApply(func(index uint64, batchID string, reqs []engine.Request, res *engine.BatchResult) {
			onApply(id, index, batchID, reqs, res)
		})
	}
	rep.Resume(recovered)
	if c.cfg.SnapshotEvery > 0 && c.dataDir != "" {
		rep.EnableSnapshots(SnapshotConfig{
			Every:   c.cfg.SnapshotEvery,
			Dir:     c.SnapDir(i),
			Compact: node.Compact,
		})
	}
	disp := sequencer.NewDispatcher(node)
	disp.SetMaxQueue(c.cfg.Flow.MaxQueue)
	c.mu.Lock()
	c.Nodes[i] = node
	c.Replicas[i] = rep
	c.Dispatchers[i] = disp
	c.storages[i] = storage
	c.wlogs[i] = wlog
	c.recoveries[i] = recovered
	// A restarted node rejoins with the cluster's standing fault state: the
	// slow-apply throttle and, over TCP, the per-endpoint loss/delay (memnet
	// keeps its own state across restarts; a fresh TCP endpoint starts clean).
	rep.SetApplyDelay(c.applyDelays[i])
	if c.cfg.TCP {
		c.Endpoints[i] = ep
		if c.lossProb > 0 || c.delayMax > 0 {
			ep.SetFault(c.lossProb, c.delayMin, c.delayMax, c.cfg.Seed+int64(i))
		}
	}
	c.mu.Unlock()
	return nil
}

// launch starts node i's event loops.
func (c *Cluster) launch(i int) {
	node, rep := c.node(i), c.replica(i)
	node.Start()
	rep.Start(node.Apply(), c.recordErr)
}

// --- locked accessors (safe against concurrent Restart) ---

func (c *Cluster) node(i int) *raft.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Nodes[i]
}

func (c *Cluster) replica(i int) *Replica {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Replicas[i]
}

func (c *Cluster) dispatcher(i int) *sequencer.Dispatcher {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Dispatchers[i]
}

// NodeAt returns node i (safe against concurrent Restart).
func (c *Cluster) NodeAt(i int) *raft.Node { return c.node(i) }

// ReplicaAt returns replica i (safe against concurrent Restart).
func (c *Cluster) ReplicaAt(i int) *Replica { return c.replica(i) }

// IDs returns the member names, index-aligned with the replica slices.
func (c *Cluster) IDs() []string {
	out := make([]string, len(c.ids))
	copy(out, c.ids)
	return out
}

// Size returns the cluster membership size.
func (c *Cluster) Size() int { return len(c.ids) }

// WALDir returns replica i's WAL directory ("" without persistence).
func (c *Cluster) WALDir(i int) string {
	if c.dataDir == "" {
		return ""
	}
	return filepath.Join(c.dataDir, c.ids[i], "wal")
}

// RaftDir returns node i's Raft storage directory ("" without persistence).
func (c *Cluster) RaftDir(i int) string {
	if c.dataDir == "" {
		return ""
	}
	return filepath.Join(c.dataDir, c.ids[i], "raft")
}

// SnapDir returns replica i's snapshot directory ("" without persistence).
func (c *Cluster) SnapDir(i int) string {
	if c.dataDir == "" {
		return ""
	}
	return filepath.Join(c.dataDir, c.ids[i], "snap")
}

// LastRecovery returns the recovery report from replica i's most recent
// (re)start — the initial boot, or the latest Restart.
func (c *Cluster) LastRecovery(i int) RecoveryReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recoveries[i]
}

// IsDown reports whether replica i is currently crashed.
func (c *Cluster) IsDown(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[i]
}

// DownReplicas returns the indices of currently crashed replicas.
func (c *Cluster) DownReplicas() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for i, d := range c.down {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// Crash stops replica i like a process kill: its apply loop and Raft node
// halt, its network presence disappears (memnet SetDown, or the TCP endpoint
// closes), and its WAL and Raft storage files are closed. State survives on
// disk; the node rejoins via Restart. Requires persistence (DataDir).
func (c *Cluster) Crash(i int) error {
	if c.dataDir == "" {
		return fmt.Errorf("replica: crash requires DataDir persistence (a node without persisted term/vote could double-vote on rejoin)")
	}
	c.mu.Lock()
	if c.down[i] {
		c.mu.Unlock()
		return fmt.Errorf("replica: %s is already down", c.ids[i])
	}
	c.down[i] = true
	node, rep := c.Nodes[i], c.Replicas[i]
	storage, wlog := c.storages[i], c.wlogs[i]
	var ep *tcpnet.Endpoint
	if c.cfg.TCP {
		ep = c.Endpoints[i]
	}
	c.mu.Unlock()
	// Cut network traffic first (the node is gone from the fabric), then
	// stop the loops, then close the files they were writing. Over TCP the
	// endpoint close kills the listener and every open connection; peers'
	// sends fail and drop, exactly like datagrams to a dead host.
	if c.Net != nil {
		c.Net.SetDown(c.ids[i], true)
	}
	if ep != nil {
		ep.Close()
	}
	rep.Stop()
	node.Stop()
	if wlog != nil {
		_ = wlog.Close()
	}
	if storage != nil {
		_ = storage.Close()
	}
	return nil
}

// Restart rejoins a crashed replica: a fresh store is rebuilt from its
// newest snapshot plus the (repaired) WAL suffix above it, the Raft node
// reloads its persisted term/vote/snapshot/log, and re-delivery from the
// live leader catches the replica up to the commit index. The executor is
// rebuilt through the NewExecutor factory. Over TCP the node re-listens on a
// fresh port; the shared directory re-routes peers on their next dial.
func (c *Cluster) Restart(i int) error {
	c.mu.Lock()
	if !c.down[i] {
		c.mu.Unlock()
		return fmt.Errorf("replica: %s is not down", c.ids[i])
	}
	c.generations[i]++
	c.mu.Unlock()
	if c.Net != nil {
		// A fresh process would not see datagrams addressed to its previous
		// life: drain the inbox before rejoining the fabric.
		c.Net.Drain(c.ids[i])
		c.Net.SetDown(c.ids[i], false)
	}
	if err := c.startNode(i); err != nil {
		if c.Net != nil {
			c.Net.SetDown(c.ids[i], true)
		}
		return err
	}
	c.launch(i)
	c.mu.Lock()
	c.down[i] = false
	c.mu.Unlock()
	return nil
}

func (c *Cluster) recordErr(err error) {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	if c.err == nil {
		c.err = err
	}
}

// Err returns the first replica apply error, if any.
func (c *Cluster) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// Stop shuts the cluster down.
func (c *Cluster) Stop() {
	for i := range c.ids {
		c.replica(i).Stop()
	}
	for i := range c.ids {
		c.node(i).Stop()
	}
	c.mu.Lock()
	storages, wlogs := c.storages, c.wlogs
	c.mu.Unlock()
	for _, w := range wlogs {
		if w != nil {
			_ = w.Close()
		}
	}
	for _, s := range storages {
		if s != nil {
			_ = s.Close()
		}
	}
	if c.Net != nil {
		c.Net.Close()
	}
	for _, ep := range c.Endpoints {
		ep.Close()
	}
}

// Flow returns the cluster's flow-control controller (admission counters,
// inflight gauges, breaker state).
func (c *Cluster) Flow() *flowctl.Controller { return c.flow }

// Clock returns the cluster's time source — the injected simulated clock in
// deterministic tests, wall time otherwise. Chaos injectors use it to place
// scheduler yield points at fault anchors.
func (c *Cluster) Clock() vclock.Clock { return c.clk }

// QueueHighWater returns the deepest any live dispatcher's request queue has
// been — the overload-soak assertion that the configured bound held.
func (c *Cluster) QueueHighWater() int {
	hw := 0
	for i := range c.ids {
		if q := c.dispatcher(i).QueueHighWater(); q > hw {
			hw = q
		}
	}
	return hw
}

// SetApplyDelay throttles replica i's apply loop (the chaos slow-apply
// fault; 0 restores full speed). The throttle survives Crash/Restart.
func (c *Cluster) SetApplyDelay(i int, d time.Duration) {
	c.mu.Lock()
	c.applyDelays[i] = d
	rep := c.Replicas[i]
	c.mu.Unlock()
	rep.SetApplyDelay(d)
}

// SetLoss sets the cluster-wide message-loss probability, on either
// transport: the memnet fabric, or per-endpoint injection over real TCP
// sockets. Restarted TCP endpoints rejoin with the standing fault.
func (c *Cluster) SetLoss(p float64) {
	c.mu.Lock()
	c.lossProb = p
	c.mu.Unlock()
	c.applyNetFaults()
}

// SetDelay sets the cluster-wide artificial delivery delay range on either
// transport (0,0 clears it).
func (c *Cluster) SetDelay(min, max time.Duration) {
	c.mu.Lock()
	c.delayMin, c.delayMax = min, max
	c.mu.Unlock()
	c.applyNetFaults()
}

func (c *Cluster) applyNetFaults() {
	c.mu.Lock()
	loss, dmin, dmax := c.lossProb, c.delayMin, c.delayMax
	var eps []*tcpnet.Endpoint
	if c.cfg.TCP {
		eps = make([]*tcpnet.Endpoint, len(c.Endpoints))
		copy(eps, c.Endpoints)
	}
	c.mu.Unlock()
	if c.Net != nil {
		c.Net.SetLoss(loss)
		c.Net.SetDelay(dmin, dmax)
		return
	}
	for i, ep := range eps {
		if ep != nil && !c.IsDown(i) {
			ep.SetFault(loss, dmin, dmax, c.cfg.Seed+int64(i))
		}
	}
}

// WaitLeader blocks until some live node is leader, returning its index.
// When several nodes claim leadership (a stale leader isolated in a minority
// partition never learns it was deposed), the claimant with the highest term
// wins — only it can commit.
func (c *Cluster) WaitLeader(within time.Duration) (int, error) {
	return c.waitLeader(flowctl.AfterClock(c.clk, within))
}

func (c *Cluster) waitLeader(dl flowctl.Deadline) (int, error) {
	bo := c.flow.NewBackoff()
	for {
		best, bestTerm := -1, uint64(0)
		for i := range c.ids {
			if c.IsDown(i) {
				continue
			}
			if role, term := c.node(i).Status(); role == raft.Leader && term > bestTerm {
				best, bestTerm = i, term
			}
		}
		if best >= 0 {
			return best, nil
		}
		if err := bo.Sleep(dl); err != nil {
			return -1, fmt.Errorf("replica: no leader: %w", err)
		}
	}
}

// defaultSubmitWindow is the ClusterConfig.SubmitWindow default: how long
// one proposal is waited on before the batch is re-proposed (idempotently)
// through the then-current leader.
const defaultSubmitWindow = 2 * time.Second

// Request is one submit-path transaction invocation. It is a type alias for
// the anonymous struct SubmitBatch has always accepted, so existing
// composite-literal call sites keep compiling unchanged.
type Request = struct {
	TxName string
	Inputs map[string]value.Value
}

// SubmitBatch routes one batch of requests through the current leader and
// waits until the replicas have applied it: every live replica by default, a
// majority with ClusterConfig.QuorumSubmit. The batch carries a unique
// idempotency ID, so when its outcome turns ambiguous — the leader crashed
// or was deposed after Propose, mid-replication — the SAME batch is safely
// re-proposed through the new leader: replicas execute the first committed
// occurrence and skip duplicates. Exactly-once application, at-least-once
// submission.
//
// The ClusterConfig.Flow policy gates the whole call: admission (inflight
// limit, rate bucket, circuit breaker) may shed it with an error wrapping
// flowctl.ErrOverload — shed batches were certainly never proposed or
// applied — and each re-proposal spends the retry budget. Every wait runs on
// seeded jittered backoff under the caller's deadline.
func (c *Cluster) SubmitBatch(reqs []Request, within time.Duration) error {
	return c.SubmitBatchDeadline(reqs, flowctl.AfterClock(c.clk, within))
}

// SubmitBatchDeadline is SubmitBatch under an explicit propagated deadline:
// leader routing, the proposal, and the apply wait all share dl's budget and
// none waits past it.
func (c *Cluster) SubmitBatchDeadline(reqs []Request, dl flowctl.Deadline) error {
	release, err := c.flow.Admit()
	if err != nil {
		return fmt.Errorf("replica: submit: %w", err)
	}
	defer release()
	c.mu.Lock()
	c.batchSeq++
	id := fmt.Sprintf("%s-%d", c.idPrefix, c.batchSeq)
	c.mu.Unlock()
	ereqs := make([]engine.Request, len(reqs))
	for i, r := range reqs {
		ereqs[i] = engine.Request{TxName: r.TxName, Inputs: r.Inputs}
	}
	bo := c.flow.NewBackoff()
	proposed := false
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if err := c.flow.AllowRetry(); err != nil {
				c.finishSubmit(id, proposed)
				return fmt.Errorf("replica: batch %s: %w", id, err)
			}
		}
		li, err := c.waitLeader(dl)
		if err != nil {
			c.finishSubmit(id, proposed)
			return err
		}
		d := c.dispatcher(li)
		// The floor must be on record before the first proposal exists
		// anywhere: every occurrence of this ID will commit above it.
		c.registerFloor(id, d.CommitIndex())
		idx, err := d.ProposeBatch(id, ereqs)
		if err != nil {
			if !errors.Is(err, sequencer.ErrNotLeader) {
				c.finishSubmit(id, proposed)
				return err
			}
			// Leadership moved between waitLeader and the proposal: nothing
			// was proposed on this node; back off and re-route.
			c.flow.RecordRouteFailure()
			if serr := bo.Sleep(dl); serr != nil {
				c.finishSubmit(id, proposed)
				return fmt.Errorf("replica: batch %s: no stable leader: %w", id, serr)
			}
			continue
		}
		c.flow.RecordRouteSuccess()
		proposed = true
		c.noteProposed(id, idx)
		bo.Reset() // apply-wait polls restart from the small first steps
		wdl := dl.Bound(c.cfg.SubmitWindow)
		for {
			if err := c.Err(); err != nil {
				c.finishSubmit(id, proposed)
				return err
			}
			if c.appliedBatch(id) {
				c.flow.RecordSuccess()
				c.ackCommit(li, id)
				return nil
			}
			if bo.Sleep(wdl) != nil {
				break // attempt window over: re-route, or fail at the deadline
			}
		}
		if dl.Expired() {
			c.finishSubmit(id, proposed)
			return fmt.Errorf("replica: batch %s (index %d) not applied: %w",
				id, idx, flowctl.ErrDeadlineExceeded)
		}
		// Ambiguous: the proposal may or may not have committed. Re-propose
		// the same ID through whoever leads now; apply-time dedup makes the
		// retry idempotent.
	}
}

// registerFloor records the pre-proposal commit floor for a batch ID; only
// the first call per ID sticks (retries keep the original, lower floor).
func (c *Cluster) registerFloor(id string, commit uint64) {
	c.floorMu.Lock()
	defer c.floorMu.Unlock()
	if _, ok := c.floors[id]; !ok {
		c.floors[id] = &submitFloor{floor: commit}
	}
}

// noteProposed records the raft index a proposal of this ID received.
func (c *Cluster) noteProposed(id string, idx uint64) {
	c.floorMu.Lock()
	defer c.floorMu.Unlock()
	if f, ok := c.floors[id]; ok && idx > f.maxIdx {
		f.maxIdx = idx
	}
}

// finishSubmit closes out a failed submission's floor. A batch that was
// never successfully proposed cannot have committed anywhere — its floor is
// simply dropped (and the shed/lost error already told the caller it was not
// applied). A batch abandoned after a proposal turns into a zombie floor: it
// keeps holding the dedup watermark back until the commit frontier passes
// its last proposed index, after which its committed-occurrence set is final
// and ackCommit sweeps it.
func (c *Cluster) finishSubmit(id string, proposed bool) {
	c.floorMu.Lock()
	defer c.floorMu.Unlock()
	f, ok := c.floors[id]
	if !ok {
		return
	}
	if !proposed || f.maxIdx == 0 {
		delete(c.floors, id)
		return
	}
	f.zombie = true
}

// ackCommit propagates the dedup low-water mark after a batch is
// acknowledged. With concurrent submitters the leader's commit index alone
// is NOT a safe prune point — another in-flight ID may have committed below
// it and still get re-proposed above it, and pruning its entry would
// double-apply the retry. Every occurrence of an in-flight ID commits above
// that ID's registered floor, so the watermark advances to the minimum of
// the leader's commit index and every other outstanding floor.
//
// An acknowledged or abandoned ID that was proposed more than once may
// still have a committed occurrence above its first: its floor stays as a
// zombie until the watermark computed WITHOUT it already covers its last
// proposed index. Only then is pruning safe — any watermark high enough to
// drop the ID's first occurrence is then also past its last, so no replica
// can prune the entry and later meet a committed duplicate.
func (c *Cluster) ackCommit(leader int, id string) {
	commit := c.dispatcher(leader).CommitIndex()
	c.floorMu.Lock()
	if f, ok := c.floors[id]; ok {
		f.zombie = true
	}
	// An active floor caps the watermark below its ID's first possible
	// occurrence. A zombie is safe in either direction: watermark at or
	// below its floor (its entries stay) or at or above its last proposed
	// index (every occurrence is covered, so the prune cannot strand a
	// later duplicate). Start from the commit frontier capped by active
	// floors and lower it until every zombie satisfies one side.
	wm := commit
	for _, f := range c.floors {
		if !f.zombie && f.floor < wm {
			wm = f.floor
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range c.floors {
			if f.zombie && f.maxIdx > wm && f.floor < wm {
				wm = f.floor
				changed = true
			}
		}
	}
	// Zombies fully covered by the watermark can never constrain it again:
	// it only advances from here.
	for zid, f := range c.floors {
		if f.zombie && f.maxIdx <= wm {
			delete(c.floors, zid)
		}
	}
	c.floorMu.Unlock()
	for i := range c.ids {
		if c.IsDown(i) {
			continue
		}
		c.replica(i).SetDedupWatermark(wm)
	}
}

// appliedBatch reports whether enough replicas have applied the batch with
// the given idempotency ID: all live replicas, or a majority of the
// membership with QuorumSubmit. The check is by ID, not by raft index — a
// deposed leader's proposal can be overwritten, letting the apply index
// sail past the proposal's slot without the batch ever committing. The
// submitter's own floor keeps the watermark below the ID's first
// occurrence, so the dedup entry consulted here cannot be pruned while the
// submit is still in flight.
func (c *Cluster) appliedBatch(id string) bool {
	applied, live := 0, 0
	for i := range c.ids {
		if c.IsDown(i) {
			continue
		}
		live++
		if c.replica(i).AppliedID(id) {
			applied++
		}
	}
	if c.cfg.QuorumSubmit {
		return applied >= len(c.ids)/2+1
	}
	return live > 0 && applied == live
}

// WaitCaughtUp blocks until every live replica has applied at least the
// leader's current commit index (and a leader exists). After a Restart and a
// Heal, this is the quiesce point where all state hashes must agree.
func (c *Cluster) WaitCaughtUp(within time.Duration) error {
	dl := flowctl.AfterClock(c.clk, within)
	bo := c.flow.NewBackoff()
	for {
		if err := c.Err(); err != nil {
			return err
		}
		li, err := c.waitLeader(dl)
		if err != nil {
			return err
		}
		target := c.node(li).CommitIndex()
		done := true
		for i := range c.ids {
			if c.IsDown(i) {
				continue
			}
			if c.replica(i).LastApplied() < target {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		if err := bo.Sleep(dl); err != nil {
			return fmt.Errorf("replica: not caught up to index %d within %v: %w", target, within, err)
		}
	}
}

// WaitSnapshot blocks until node i's raft log has been compacted at or above
// minIndex — the handshake a test (or operator) uses to know the replica's
// snapshot both exists on disk and has truncated the consensus log.
func (c *Cluster) WaitSnapshot(i int, minIndex uint64, within time.Duration) error {
	dl := flowctl.AfterClock(c.clk, within)
	bo := c.flow.NewBackoff()
	for {
		if got := c.node(i).SnapshotIndex(); got >= minIndex {
			return nil
		}
		if err := bo.Sleep(dl); err != nil {
			return fmt.Errorf("replica: %s not compacted to %d within %v (at %d): %w",
				c.ids[i], minIndex, within, c.node(i).SnapshotIndex(), err)
		}
	}
}

// StateHashes returns every replica's state hash (crashed replicas report
// their state as of the crash).
func (c *Cluster) StateHashes() []uint64 {
	out := make([]uint64, len(c.ids))
	for i := range c.ids {
		out[i] = c.replica(i).StateHash()
	}
	return out
}

// Converged reports whether all replicas currently hash identically.
func (c *Cluster) Converged() bool {
	hs := c.StateHashes()
	for _, h := range hs[1:] {
		if h != hs[0] {
			return false
		}
	}
	return true
}

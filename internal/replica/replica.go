// Package replica ties the pieces into a System Replica (paper Fig. 1): a
// Raft node delivering ordered batches, a deterministic executor applying
// them, an optional write-ahead log for durability, and a state hash for
// divergence detection. A Cluster helper assembles a full in-process
// deployment (N replicas + dispatchers) for the examples, tests and
// cmd/replicad.
package replica

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"prognosticator/internal/engine"
	"prognosticator/internal/memnet"
	"prognosticator/internal/raft"
	"prognosticator/internal/sequencer"
	"prognosticator/internal/store"
	"prognosticator/internal/tcpnet"
	"prognosticator/internal/value"
	"prognosticator/internal/wal"
)

// Replica applies committed batches to a deterministic executor.
type Replica struct {
	ID   string
	exec engine.Executor
	st   *store.Store
	log  *wal.Log // nil disables durability

	mu          sync.Mutex
	lastApplied uint64 // raft index of last applied batch
	batches     int
	stopCh      chan struct{}
	stopOnce    sync.Once
	wg          sync.WaitGroup
}

// New returns a replica applying batches through exec. wlog may be nil.
func New(id string, exec engine.Executor, st *store.Store, wlog *wal.Log) *Replica {
	return &Replica{ID: id, exec: exec, st: st, log: wlog, stopCh: make(chan struct{})}
}

// Start launches the apply loop consuming committed entries.
func (r *Replica) Start(applyCh <-chan raft.Committed, onError func(error)) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for {
			select {
			case <-r.stopCh:
				return
			case c := <-applyCh:
				if err := r.applyOne(c); err != nil {
					if onError != nil {
						onError(err)
					}
					return
				}
			}
		}
	}()
}

// Stop terminates the apply loop.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() { close(r.stopCh) })
	r.wg.Wait()
}

func (r *Replica) applyOne(c raft.Committed) error {
	reqs, err := sequencer.DecodeCommitted(c)
	if err != nil {
		return fmt.Errorf("replica %s: %w", r.ID, err)
	}
	// Durability first: log the ordered batch, then apply. Recovery
	// replays the log through a fresh engine; determinism guarantees the
	// same end state.
	if r.log != nil {
		if err := r.log.Append(c.Cmd); err != nil {
			return fmt.Errorf("replica %s: wal: %w", r.ID, err)
		}
	}
	if _, err := r.exec.ExecuteBatch(reqs); err != nil {
		return fmt.Errorf("replica %s: apply batch %d: %w", r.ID, c.Index, err)
	}
	r.mu.Lock()
	r.lastApplied = c.Index
	r.batches++
	r.mu.Unlock()
	return nil
}

// LastApplied returns the Raft index of the last applied batch.
func (r *Replica) LastApplied() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastApplied
}

// Batches returns the number of applied batches.
func (r *Replica) Batches() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.batches
}

// StateHash returns the order-independent hash of the replica's current
// store state.
func (r *Replica) StateHash() uint64 { return r.st.StateHash(r.st.Epoch()) }

// Recover replays a WAL directory through exec, rebuilding the store state
// of a crashed replica. It returns the number of batches replayed.
func Recover(dir string, exec engine.Executor) (int, error) {
	n := 0
	err := wal.Replay(dir, func(payload []byte) error {
		reqs, err := sequencer.DecodeCommitted(raft.Committed{Index: uint64(n + 1), Cmd: payload})
		if err != nil {
			return err
		}
		if _, err := exec.ExecuteBatch(reqs); err != nil {
			return err
		}
		n++
		return nil
	})
	if err != nil {
		return n, fmt.Errorf("replica: recover: %w", err)
	}
	return n, nil
}

// Cluster is an in-process deployment: N Raft nodes, one replica each, and
// a dispatcher per node. It is the top-level object the examples and
// cmd/replicad drive. Consensus traffic flows over simulated channels
// (memnet, the default) or real loopback TCP sockets (tcpnet).
type Cluster struct {
	Net         *memnet.Network // nil when running over TCP
	Endpoints   []*tcpnet.Endpoint
	Nodes       []*raft.Node
	Replicas    []*Replica
	Dispatchers []*sequencer.Dispatcher

	errMu sync.Mutex
	err   error
}

// ClusterConfig configures NewCluster.
type ClusterConfig struct {
	Replicas int
	Seed     int64
	// NewExecutor builds each replica's executor over its private store.
	NewExecutor func(replicaID string, st *store.Store) (engine.Executor, error)
	// Raft overrides the consensus timing (zero = defaults).
	Raft raft.Config
	// TCP routes consensus over real loopback sockets instead of the
	// in-process simulated network.
	TCP bool
}

// NewCluster assembles and starts an in-process cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.NewExecutor == nil {
		return nil, fmt.Errorf("replica: cluster needs a NewExecutor factory")
	}
	c := &Cluster{}
	ids := make([]string, cfg.Replicas)
	for i := range ids {
		ids[i] = fmt.Sprintf("replica-%d", i)
	}
	var dir *tcpnet.Directory
	if cfg.TCP {
		tcpnet.Register(raft.WireTypes()...)
		dir = tcpnet.NewDirectory()
	} else {
		c.Net = memnet.New(cfg.Seed)
	}
	for i, id := range ids {
		var node *raft.Node
		if cfg.TCP {
			ep, err := tcpnet.Listen(id, "127.0.0.1:0", dir)
			if err != nil {
				return nil, fmt.Errorf("replica: cluster transport for %s: %w", id, err)
			}
			c.Endpoints = append(c.Endpoints, ep)
			node = raft.NewNodeWithTransport(id, ids, ep, cfg.Raft, cfg.Seed+int64(i)*7919)
		} else {
			node = raft.NewNode(id, ids, c.Net, cfg.Raft, cfg.Seed+int64(i)*7919)
		}
		st := store.New()
		exec, err := cfg.NewExecutor(id, st)
		if err != nil {
			return nil, fmt.Errorf("replica: cluster executor for %s: %w", id, err)
		}
		rep := New(id, exec, st, nil)
		c.Nodes = append(c.Nodes, node)
		c.Replicas = append(c.Replicas, rep)
		c.Dispatchers = append(c.Dispatchers, sequencer.NewDispatcher(node))
	}
	for i := range c.Nodes {
		c.Nodes[i].Start()
		c.Replicas[i].Start(c.Nodes[i].Apply(), c.recordErr)
	}
	return c, nil
}

func (c *Cluster) recordErr(err error) {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	if c.err == nil {
		c.err = err
	}
}

// Err returns the first replica apply error, if any.
func (c *Cluster) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// Stop shuts the cluster down.
func (c *Cluster) Stop() {
	for _, r := range c.Replicas {
		r.Stop()
	}
	for _, n := range c.Nodes {
		n.Stop()
	}
	if c.Net != nil {
		c.Net.Close()
	}
	for _, ep := range c.Endpoints {
		ep.Close()
	}
}

// WaitLeader blocks until some node is leader, returning its index.
func (c *Cluster) WaitLeader(within time.Duration) (int, error) {
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		for i, n := range c.Nodes {
			if role, _ := n.Status(); role == raft.Leader {
				return i, nil
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	return -1, fmt.Errorf("replica: no leader within %v", within)
}

// SubmitBatch routes one batch of requests through the current leader —
// retrying through the new leader if leadership moves mid-submit — and
// waits until every replica has applied it.
func (c *Cluster) SubmitBatch(reqs []struct {
	TxName string
	Inputs map[string]value.Value
}, within time.Duration) error {
	deadline := time.Now().Add(within)
	var idx uint64
	for {
		li, err := c.WaitLeader(time.Until(deadline))
		if err != nil {
			return err
		}
		d := c.Dispatchers[li]
		for _, r := range reqs {
			d.Submit(r.TxName, r.Inputs)
		}
		idx, err = d.Flush()
		if err == nil {
			break
		}
		// Leadership moved between WaitLeader and Flush: drop this
		// node's buffer (the batch was never proposed) and re-route.
		d.Discard()
		if !errors.Is(err, sequencer.ErrNotLeader) {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replica: no stable leader within %v", within)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for time.Now().Before(deadline) {
		if err := c.Err(); err != nil {
			return err
		}
		done := true
		for _, rep := range c.Replicas {
			if rep.LastApplied() < idx {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("replica: batch %d not applied everywhere within %v", idx, within)
}

// StateHashes returns every replica's state hash.
func (c *Cluster) StateHashes() []uint64 {
	out := make([]uint64, len(c.Replicas))
	for i, r := range c.Replicas {
		out[i] = r.StateHash()
	}
	return out
}

// Converged reports whether all replicas currently hash identically.
func (c *Cluster) Converged() bool {
	hs := c.StateHashes()
	for _, h := range hs[1:] {
		if h != hs[0] {
			return false
		}
	}
	return true
}

// Package replica ties the pieces into a System Replica (paper Fig. 1): a
// Raft node delivering ordered batches, a deterministic executor applying
// them, an optional write-ahead log for durability, and a state hash for
// divergence detection. A Cluster helper assembles a full in-process
// deployment (N replicas + dispatchers) for the examples, tests and
// cmd/replicad — including per-replica crash and rejoin: a crashed node's
// store is rebuilt by replaying its WAL, then caught up through Raft to the
// live commit index, while apply-time batch-ID deduplication makes client
// resubmission after an ambiguous leader change idempotent.
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"prognosticator/internal/engine"
	"prognosticator/internal/memnet"
	"prognosticator/internal/raft"
	"prognosticator/internal/sequencer"
	"prognosticator/internal/store"
	"prognosticator/internal/tcpnet"
	"prognosticator/internal/value"
	"prognosticator/internal/wal"
)

// Replica applies committed batches to a deterministic executor.
type Replica struct {
	ID   string
	exec engine.Executor
	st   *store.Store
	log  *wal.Log // nil disables durability

	mu          sync.Mutex
	lastApplied uint64 // raft index of last applied batch
	batches     int
	// appliedIDs maps each applied batch's idempotency ID to the raft index
	// of its first (and only executed) occurrence. Rebuilt from the WAL on
	// recovery, so deduplication decisions are identical across crashes and
	// across replicas: every replica sees the same committed sequence and
	// skips the same duplicates.
	appliedIDs  map[string]uint64
	deduped     int // duplicate batches skipped (idempotent resubmission)
	redelivered int // already-applied entries re-delivered by raft after restart
	stopCh      chan struct{}
	stopOnce    sync.Once
	wg          sync.WaitGroup
}

// New returns a replica applying batches through exec. wlog may be nil.
func New(id string, exec engine.Executor, st *store.Store, wlog *wal.Log) *Replica {
	return &Replica{
		ID: id, exec: exec, st: st, log: wlog,
		appliedIDs: map[string]uint64{},
		stopCh:     make(chan struct{}),
	}
}

// Resume seeds the replica's apply position from a WAL recovery, so that
// Raft's re-delivery of committed entries from index 1 (there is no
// snapshotting) skips everything the recovered store already contains. Must
// be called before Start.
func (r *Replica) Resume(rep RecoveryReport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lastApplied = rep.LastIndex
	r.batches = rep.Batches
	for id, idx := range rep.AppliedIDs {
		r.appliedIDs[id] = idx
	}
}

// Start launches the apply loop consuming committed entries.
func (r *Replica) Start(applyCh <-chan raft.Committed, onError func(error)) {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		for {
			select {
			case <-r.stopCh:
				return
			case c := <-applyCh:
				if err := r.applyOne(c); err != nil {
					if onError != nil {
						onError(err)
					}
					return
				}
			}
		}
	}()
}

// Stop terminates the apply loop.
func (r *Replica) Stop() {
	r.stopOnce.Do(func() { close(r.stopCh) })
	r.wg.Wait()
}

func (r *Replica) applyOne(c raft.Committed) error {
	b, err := sequencer.DecodeBatch(c)
	if err != nil {
		return fmt.Errorf("replica %s: %w", r.ID, err)
	}
	r.mu.Lock()
	if c.Index <= r.lastApplied {
		// Raft re-delivers from index 1 after a restart; the recovered
		// prefix is already in the store.
		r.redelivered++
		r.mu.Unlock()
		return nil
	}
	if b.ID != "" {
		if _, dup := r.appliedIDs[b.ID]; dup {
			// A resubmitted batch committed twice (ambiguous leader change
			// mid-submit): execute the first occurrence only. The duplicate
			// is not WAL-logged either, so recovery replays it exactly once.
			r.deduped++
			r.lastApplied = c.Index
			r.mu.Unlock()
			return nil
		}
	}
	r.mu.Unlock()
	// Durability first: log the ordered batch (with its raft index, so
	// recovery reconstructs identical sequence numbers), then apply.
	// Recovery replays the log through a fresh engine; determinism
	// guarantees the same end state.
	if r.log != nil {
		if err := r.log.Append(envelope(c.Index, c.Cmd)); err != nil {
			return fmt.Errorf("replica %s: wal: %w", r.ID, err)
		}
	}
	if _, err := r.exec.ExecuteBatch(b.Requests); err != nil {
		return fmt.Errorf("replica %s: apply batch %d: %w", r.ID, c.Index, err)
	}
	r.mu.Lock()
	r.lastApplied = c.Index
	r.batches++
	if b.ID != "" {
		r.appliedIDs[b.ID] = c.Index
	}
	r.mu.Unlock()
	return nil
}

// LastApplied returns the Raft index of the last applied batch.
func (r *Replica) LastApplied() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastApplied
}

// Batches returns the number of batches this replica's store state
// reflects: batches executed live plus batches replayed from the WAL at
// recovery. Duplicates and re-deliveries are never counted, so under an
// exactly-once workload this equals the number of distinct submitted
// batches.
func (r *Replica) Batches() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.batches
}

// Deduped returns how many duplicate batch resubmissions were skipped.
func (r *Replica) Deduped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.deduped
}

// Redelivered returns how many already-applied entries Raft re-delivered
// (the catch-up prefix after a restart).
func (r *Replica) Redelivered() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.redelivered
}

// StateHash returns the order-independent hash of the replica's current
// store state.
func (r *Replica) StateHash() uint64 { return r.st.StateHash(r.st.Epoch()) }

// --- WAL record envelope ---

// Replica WAL records are framed as an 8-byte little-endian raft index
// followed by the committed batch payload. Persisting the index keeps
// recovered sequence numbers (derived from the index) identical to the
// original execution even when deduplicated batches leave gaps in the
// logged index sequence.
const envelopeHeader = 8

func envelope(idx uint64, cmd []byte) []byte {
	out := make([]byte, envelopeHeader+len(cmd))
	binary.LittleEndian.PutUint64(out[:envelopeHeader], idx)
	copy(out[envelopeHeader:], cmd)
	return out
}

func parseEnvelope(payload []byte) (uint64, []byte, error) {
	if len(payload) < envelopeHeader {
		return 0, nil, fmt.Errorf("replica: wal record too short (%d bytes)", len(payload))
	}
	return binary.LittleEndian.Uint64(payload[:envelopeHeader]), payload[envelopeHeader:], nil
}

// RecoveryReport summarizes a WAL recovery: what was replayed and what, if
// anything, a corrupted tail cost.
type RecoveryReport struct {
	// Batches is the number of batches replayed into the executor.
	Batches int
	// LastIndex is the raft index of the last replayed batch (the resume
	// point: Raft redelivery catches the replica up from here).
	LastIndex uint64
	// AppliedIDs maps replayed batch idempotency IDs to their raft index.
	AppliedIDs map[string]uint64
	// WAL reports the physical repair: whether a torn or corrupted tail was
	// truncated and how many bytes of unreplayable suffix were discarded
	// (those batches are re-fetched through Raft, not lost).
	WAL wal.Stats
}

// Recover rebuilds the store state of a crashed replica by replaying its WAL
// directory through exec. The log is first repaired — truncated at the first
// torn or corrupted record — so the surviving prefix is exactly what is
// replayed and subsequent appends extend a verified-clean log. The report
// says how many batches were replayed, where to resume, and how much the
// corruption (if any) cost.
func Recover(dir string, exec engine.Executor) (RecoveryReport, error) {
	rep := RecoveryReport{AppliedIDs: map[string]uint64{}}
	st, err := wal.Repair(dir)
	if err != nil {
		return rep, fmt.Errorf("replica: recover repair: %w", err)
	}
	rep.WAL = st
	err = wal.Replay(dir, func(payload []byte) error {
		idx, cmd, err := parseEnvelope(payload)
		if err != nil {
			return err
		}
		b, err := sequencer.DecodeBatch(raft.Committed{Index: idx, Cmd: cmd})
		if err != nil {
			return err
		}
		if _, err := exec.ExecuteBatch(b.Requests); err != nil {
			return err
		}
		rep.Batches++
		rep.LastIndex = idx
		if b.ID != "" {
			rep.AppliedIDs[b.ID] = idx
		}
		return nil
	})
	if err != nil {
		return rep, fmt.Errorf("replica: recover: %w", err)
	}
	return rep, nil
}

// Cluster is an in-process deployment: N Raft nodes, one replica each, and
// a dispatcher per node. It is the top-level object the examples, tests,
// cmd/replicad and the chaos harness drive. Consensus traffic flows over
// simulated channels (memnet, the default) or real loopback TCP sockets
// (tcpnet). With DataDir set, every node persists its Raft state and its
// replica WAL, enabling per-replica Crash and Restart.
//
// The exported slices are stable for the lifetime of the cluster object;
// their ELEMENTS are replaced by Restart. Code that may run concurrently
// with crash/restart (the chaos harness, SubmitBatch retries) must use the
// accessor methods, which lock.
type Cluster struct {
	Net         *memnet.Network // nil when running over TCP
	Endpoints   []*tcpnet.Endpoint
	Nodes       []*raft.Node
	Replicas    []*Replica
	Dispatchers []*sequencer.Dispatcher

	cfg      ClusterConfig
	ids      []string
	dataDir  string
	idPrefix string // boot nonce making batch IDs unique across cluster lifetimes

	mu          sync.Mutex
	down        []bool
	generations []int
	storages    []*raft.FileStorage
	wlogs       []*wal.Log
	batchSeq    uint64

	errMu sync.Mutex
	err   error
}

// ClusterConfig configures NewCluster.
type ClusterConfig struct {
	Replicas int
	Seed     int64
	// NewExecutor builds each replica's executor over its private store. It
	// is called again on Restart: the factory must produce the same initial
	// state (e.g. the same Populate) so WAL replay rebuilds on top of it.
	NewExecutor func(replicaID string, st *store.Store) (engine.Executor, error)
	// Raft overrides the consensus timing (zero = defaults).
	Raft raft.Config
	// TCP routes consensus over real loopback sockets instead of the
	// in-process simulated network. Crash/Restart require the memnet
	// transport.
	TCP bool
	// DataDir enables durability: node i persists its Raft state under
	// DataDir/<id>/raft and its replica WAL under DataDir/<id>/wal.
	// Required for Crash/Restart (a node restarting without persisted
	// term/vote could double-vote).
	DataDir string
	// WALSync selects the replica WAL fsync policy (default SyncOS: the
	// in-process fault model crashes goroutines, not machines).
	WALSync wal.SyncPolicy
	// QuorumSubmit makes SubmitBatch report success once a majority of
	// replicas applied the batch (the committed entry is durable; laggards
	// catch up through Raft). Default false waits for every live replica —
	// the right semantics when callers compare all state hashes immediately
	// after submit.
	QuorumSubmit bool
}

// NewCluster assembles and starts an in-process cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.NewExecutor == nil {
		return nil, fmt.Errorf("replica: cluster needs a NewExecutor factory")
	}
	c := &Cluster{
		cfg:      cfg,
		dataDir:  cfg.DataDir,
		idPrefix: fmt.Sprintf("%x", time.Now().UnixNano()),
	}
	n := cfg.Replicas
	c.ids = make([]string, n)
	for i := range c.ids {
		c.ids[i] = fmt.Sprintf("replica-%d", i)
	}
	c.Nodes = make([]*raft.Node, n)
	c.Replicas = make([]*Replica, n)
	c.Dispatchers = make([]*sequencer.Dispatcher, n)
	c.down = make([]bool, n)
	c.generations = make([]int, n)
	c.storages = make([]*raft.FileStorage, n)
	c.wlogs = make([]*wal.Log, n)
	var dir *tcpnet.Directory
	if cfg.TCP {
		tcpnet.Register(raft.WireTypes()...)
		dir = tcpnet.NewDirectory()
	} else {
		c.Net = memnet.New(cfg.Seed)
	}
	for i := range c.ids {
		if err := c.startNode(i, dir); err != nil {
			return nil, err
		}
	}
	for i := range c.Nodes {
		c.launch(i)
	}
	return c, nil
}

// startNode builds (or rebuilds, on restart) node i: transport endpoint,
// raft node with optional persistent storage, a fresh store recovered from
// the replica WAL, and a dispatcher. It does not start the event loops.
// Callers hold no cluster lock; the built components are installed under
// c.mu.
func (c *Cluster) startNode(i int, dir *tcpnet.Directory) error {
	id := c.ids[i]
	c.mu.Lock()
	gen := c.generations[i]
	c.mu.Unlock()
	seed := c.cfg.Seed + int64(i)*7919 + int64(gen)*104729
	var node *raft.Node
	if c.cfg.TCP {
		ep, err := tcpnet.Listen(id, "127.0.0.1:0", dir)
		if err != nil {
			return fmt.Errorf("replica: cluster transport for %s: %w", id, err)
		}
		c.Endpoints = append(c.Endpoints, ep)
		node = raft.NewNodeWithTransport(id, c.ids, ep, c.cfg.Raft, seed)
	} else {
		node = raft.NewNode(id, c.ids, c.Net, c.cfg.Raft, seed)
	}
	var storage *raft.FileStorage
	if c.dataDir != "" {
		stg, err := raft.OpenFileStorage(filepath.Join(c.dataDir, id, "raft"))
		if err != nil {
			return fmt.Errorf("replica: cluster raft storage for %s: %w", id, err)
		}
		if err := node.UseStorage(stg); err != nil {
			_ = stg.Close()
			return fmt.Errorf("replica: cluster raft storage for %s: %w", id, err)
		}
		storage = stg
	}
	st := store.New()
	exec, err := c.cfg.NewExecutor(id, st)
	if err != nil {
		if storage != nil {
			_ = storage.Close()
		}
		return fmt.Errorf("replica: cluster executor for %s: %w", id, err)
	}
	var wlog *wal.Log
	var recovered RecoveryReport
	if c.dataDir != "" {
		wdir := c.WALDir(i)
		recovered, err = Recover(wdir, exec)
		if err != nil {
			_ = storage.Close()
			return fmt.Errorf("replica: cluster recovery for %s: %w", id, err)
		}
		wlog, err = wal.Open(wdir, wal.Options{Sync: c.cfg.WALSync})
		if err != nil {
			_ = storage.Close()
			return fmt.Errorf("replica: cluster wal for %s: %w", id, err)
		}
	}
	rep := New(id, exec, st, wlog)
	rep.Resume(recovered)
	c.mu.Lock()
	c.Nodes[i] = node
	c.Replicas[i] = rep
	c.Dispatchers[i] = sequencer.NewDispatcher(node)
	c.storages[i] = storage
	c.wlogs[i] = wlog
	c.mu.Unlock()
	return nil
}

// launch starts node i's event loops.
func (c *Cluster) launch(i int) {
	node, rep := c.node(i), c.replica(i)
	node.Start()
	rep.Start(node.Apply(), c.recordErr)
}

// --- locked accessors (safe against concurrent Restart) ---

func (c *Cluster) node(i int) *raft.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Nodes[i]
}

func (c *Cluster) replica(i int) *Replica {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Replicas[i]
}

func (c *Cluster) dispatcher(i int) *sequencer.Dispatcher {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.Dispatchers[i]
}

// NodeAt returns node i (safe against concurrent Restart).
func (c *Cluster) NodeAt(i int) *raft.Node { return c.node(i) }

// ReplicaAt returns replica i (safe against concurrent Restart).
func (c *Cluster) ReplicaAt(i int) *Replica { return c.replica(i) }

// IDs returns the member names, index-aligned with the replica slices.
func (c *Cluster) IDs() []string {
	out := make([]string, len(c.ids))
	copy(out, c.ids)
	return out
}

// Size returns the cluster membership size.
func (c *Cluster) Size() int { return len(c.ids) }

// WALDir returns replica i's WAL directory ("" without persistence).
func (c *Cluster) WALDir(i int) string {
	if c.dataDir == "" {
		return ""
	}
	return filepath.Join(c.dataDir, c.ids[i], "wal")
}

// RaftDir returns node i's Raft storage directory ("" without persistence).
func (c *Cluster) RaftDir(i int) string {
	if c.dataDir == "" {
		return ""
	}
	return filepath.Join(c.dataDir, c.ids[i], "raft")
}

// IsDown reports whether replica i is currently crashed.
func (c *Cluster) IsDown(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[i]
}

// DownReplicas returns the indices of currently crashed replicas.
func (c *Cluster) DownReplicas() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for i, d := range c.down {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// Crash stops replica i like a process kill: its apply loop and Raft node
// halt and its WAL and Raft storage files are closed. State survives on
// disk; the node rejoins via Restart. Requires persistence (DataDir) and the
// memnet transport.
func (c *Cluster) Crash(i int) error {
	if c.cfg.TCP {
		return fmt.Errorf("replica: crash/restart requires the memnet transport")
	}
	if c.dataDir == "" {
		return fmt.Errorf("replica: crash requires DataDir persistence (a node without persisted term/vote could double-vote on rejoin)")
	}
	c.mu.Lock()
	if c.down[i] {
		c.mu.Unlock()
		return fmt.Errorf("replica: %s is already down", c.ids[i])
	}
	c.down[i] = true
	node, rep := c.Nodes[i], c.Replicas[i]
	storage, wlog := c.storages[i], c.wlogs[i]
	c.mu.Unlock()
	// Cut network traffic first (the node is gone from the fabric), then
	// stop the loops, then close the files they were writing.
	c.Net.SetDown(c.ids[i], true)
	rep.Stop()
	node.Stop()
	if wlog != nil {
		_ = wlog.Close()
	}
	if storage != nil {
		_ = storage.Close()
	}
	return nil
}

// Restart rejoins a crashed replica: a fresh store is rebuilt by replaying
// its (repaired) WAL, the Raft node reloads its persisted term/vote/log, and
// re-delivery from the live leader catches the replica up to the commit
// index. The executor is rebuilt through the NewExecutor factory.
func (c *Cluster) Restart(i int) error {
	c.mu.Lock()
	if !c.down[i] {
		c.mu.Unlock()
		return fmt.Errorf("replica: %s is not down", c.ids[i])
	}
	c.generations[i]++
	c.mu.Unlock()
	// A fresh process would not see datagrams addressed to its previous
	// life: drain the inbox before rejoining the fabric.
	c.Net.Drain(c.ids[i])
	c.Net.SetDown(c.ids[i], false)
	if err := c.startNode(i, nil); err != nil {
		c.Net.SetDown(c.ids[i], true)
		return err
	}
	c.launch(i)
	c.mu.Lock()
	c.down[i] = false
	c.mu.Unlock()
	return nil
}

func (c *Cluster) recordErr(err error) {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	if c.err == nil {
		c.err = err
	}
}

// Err returns the first replica apply error, if any.
func (c *Cluster) Err() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.err
}

// Stop shuts the cluster down.
func (c *Cluster) Stop() {
	for i := range c.ids {
		c.replica(i).Stop()
	}
	for i := range c.ids {
		c.node(i).Stop()
	}
	c.mu.Lock()
	storages, wlogs := c.storages, c.wlogs
	c.mu.Unlock()
	for _, w := range wlogs {
		if w != nil {
			_ = w.Close()
		}
	}
	for _, s := range storages {
		if s != nil {
			_ = s.Close()
		}
	}
	if c.Net != nil {
		c.Net.Close()
	}
	for _, ep := range c.Endpoints {
		ep.Close()
	}
}

// WaitLeader blocks until some live node is leader, returning its index.
// When several nodes claim leadership (a stale leader isolated in a minority
// partition never learns it was deposed), the claimant with the highest term
// wins — only it can commit.
func (c *Cluster) WaitLeader(within time.Duration) (int, error) {
	deadline := time.Now().Add(within)
	for {
		best, bestTerm := -1, uint64(0)
		for i := range c.ids {
			if c.IsDown(i) {
				continue
			}
			if role, term := c.node(i).Status(); role == raft.Leader && term > bestTerm {
				best, bestTerm = i, term
			}
		}
		if best >= 0 {
			return best, nil
		}
		if !time.Now().Before(deadline) {
			return -1, fmt.Errorf("replica: no leader within %v", within)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// submitAttemptWindow bounds how long one proposal is waited on before the
// batch is re-proposed (idempotently) through the then-current leader. A
// proposal can be lost without any error signal when its leader crashes
// after accepting it but before replicating it.
const submitAttemptWindow = 2 * time.Second

// SubmitBatch routes one batch of requests through the current leader and
// waits until the replicas have applied it: every live replica by default, a
// majority with ClusterConfig.QuorumSubmit. The batch carries a unique
// idempotency ID, so when its outcome turns ambiguous — the leader crashed
// or was deposed after Propose, mid-replication — the SAME batch is safely
// re-proposed through the new leader: replicas execute the first committed
// occurrence and skip duplicates. Exactly-once application, at-least-once
// submission.
func (c *Cluster) SubmitBatch(reqs []struct {
	TxName string
	Inputs map[string]value.Value
}, within time.Duration) error {
	c.mu.Lock()
	c.batchSeq++
	id := fmt.Sprintf("%s-%d", c.idPrefix, c.batchSeq)
	c.mu.Unlock()
	deadline := time.Now().Add(within)
	for {
		li, err := c.WaitLeader(time.Until(deadline))
		if err != nil {
			return err
		}
		d := c.dispatcher(li)
		for _, r := range reqs {
			d.Submit(r.TxName, r.Inputs)
		}
		idx, err := d.FlushAs(id)
		if err != nil {
			// Leadership moved between WaitLeader and Flush: drop this
			// node's buffer (the batch was never proposed) and re-route.
			d.Discard()
			if !errors.Is(err, sequencer.ErrNotLeader) {
				return err
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("replica: no stable leader within %v", within)
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		window := time.Now().Add(submitAttemptWindow)
		if window.After(deadline) {
			window = deadline
		}
		for time.Now().Before(window) {
			if err := c.Err(); err != nil {
				return err
			}
			if c.appliedBy(idx) {
				return nil
			}
			time.Sleep(2 * time.Millisecond)
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("replica: batch %s (index %d) not applied within %v", id, idx, within)
		}
		// Ambiguous: the proposal may or may not have committed. Re-propose
		// the same ID through whoever leads now; apply-time dedup makes the
		// retry idempotent.
	}
}

// appliedBy reports whether enough replicas have applied entry idx: all live
// replicas, or a majority of the membership with QuorumSubmit.
func (c *Cluster) appliedBy(idx uint64) bool {
	applied, live := 0, 0
	for i := range c.ids {
		if c.IsDown(i) {
			continue
		}
		live++
		if c.replica(i).LastApplied() >= idx {
			applied++
		}
	}
	if c.cfg.QuorumSubmit {
		return applied >= len(c.ids)/2+1
	}
	return live > 0 && applied == live
}

// WaitCaughtUp blocks until every live replica has applied at least the
// leader's current commit index (and a leader exists). After a Restart and a
// Heal, this is the quiesce point where all state hashes must agree.
func (c *Cluster) WaitCaughtUp(within time.Duration) error {
	deadline := time.Now().Add(within)
	for {
		if err := c.Err(); err != nil {
			return err
		}
		li, err := c.WaitLeader(time.Until(deadline))
		if err != nil {
			return err
		}
		target := c.node(li).CommitIndex()
		done := true
		for i := range c.ids {
			if c.IsDown(i) {
				continue
			}
			if c.replica(i).LastApplied() < target {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("replica: not caught up to index %d within %v", target, within)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// StateHashes returns every replica's state hash (crashed replicas report
// their state as of the crash).
func (c *Cluster) StateHashes() []uint64 {
	out := make([]uint64, len(c.ids))
	for i := range c.ids {
		out[i] = c.replica(i).StateHash()
	}
	return out
}

// Converged reports whether all replicas currently hash identically.
func (c *Cluster) Converged() bool {
	hs := c.StateHashes()
	for _, h := range hs[1:] {
		if h != hs[0] {
			return false
		}
	}
	return true
}

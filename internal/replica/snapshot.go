package replica

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"prognosticator/internal/store"
	"prognosticator/internal/value"
)

// StoreSnapshot is the application-level snapshot a replica takes of its
// store: the full live state at a raft index, plus the apply-side metadata
// needed to resume exactly where the snapshot was taken. The same encoded
// form serves three purposes — it is written to the replica's data dir
// (crash recovery), handed to raft.Compact as the compaction payload, and
// shipped verbatim inside InstallSnapshot to far-behind followers.
type StoreSnapshot struct {
	// Index is the raft index of the last batch reflected in Pairs.
	Index uint64 `json:"index"`
	// Batches is the replica's batch count at capture.
	Batches int `json:"batches"`
	// Watermark is the dedup low-water mark at capture: IDs first applied
	// at indices <= Watermark have been acknowledged and pruned.
	Watermark uint64 `json:"watermark"`
	// AppliedIDs are the surviving (unpruned) dedup entries.
	AppliedIDs map[string]uint64 `json:"appliedIDs,omitempty"`
	// Pairs is the live state, sorted by key so the encoding — and hence
	// the bytes raft replicates — is identical on every replica.
	Pairs []SnapPair `json:"pairs"`
}

// SnapPair is one live key/value pair.
type SnapPair struct {
	Key value.Encoded `json:"k"`
	Val value.Value   `json:"v"`
}

var snapCRC = crc32.MakeTable(crc32.Castagnoli)

// snapHeader frames an encoded snapshot: 4-byte little-endian payload
// length, then a CRC32-C of the payload. Mirrors the WAL frame so torn
// snapshot files are detected, not half-restored.
const snapHeader = 8

// EncodeSnapshot serializes s with a CRC frame. Pairs are sorted in place.
func EncodeSnapshot(s *StoreSnapshot) ([]byte, error) {
	sort.Slice(s.Pairs, func(i, j int) bool { return s.Pairs[i].Key < s.Pairs[j].Key })
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("replica: encode snapshot: %w", err)
	}
	out := make([]byte, snapHeader+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, snapCRC))
	copy(out[snapHeader:], payload)
	return out, nil
}

// DecodeSnapshot parses an encoded snapshot, verifying the CRC frame.
func DecodeSnapshot(data []byte) (*StoreSnapshot, error) {
	if len(data) < snapHeader {
		return nil, fmt.Errorf("replica: snapshot too short (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	if uint64(snapHeader)+uint64(n) != uint64(len(data)) {
		return nil, fmt.Errorf("replica: snapshot length mismatch (header %d, body %d)", n, len(data)-snapHeader)
	}
	payload := data[snapHeader:]
	if crc32.Checksum(payload, snapCRC) != binary.LittleEndian.Uint32(data[4:8]) {
		return nil, fmt.Errorf("replica: snapshot CRC mismatch")
	}
	var s StoreSnapshot
	if err := json.Unmarshal(payload, &s); err != nil {
		return nil, fmt.Errorf("replica: decode snapshot: %w", err)
	}
	return &s, nil
}

// CaptureStore flattens the store's live state at its current epoch into
// snapshot pairs.
func CaptureStore(st *store.Store) []SnapPair {
	var pairs []SnapPair
	st.ForEach(st.Epoch(), func(k value.Encoded, v value.Value) {
		pairs = append(pairs, SnapPair{Key: k, Val: v})
	})
	return pairs
}

// RestoreStore replaces st's contents with the snapshot's pairs.
func RestoreStore(st *store.Store, s *StoreSnapshot) {
	items := make(map[value.Encoded]value.Value, len(s.Pairs))
	for _, p := range s.Pairs {
		items[p.Key] = p.Val
	}
	st.Restore(items)
}

// snapSuffix names snapshot files "<raft index>.snap".
const snapSuffix = ".snap"

func snapName(index uint64) string { return fmt.Sprintf("%016d%s", index, snapSuffix) }

// WriteSnapshotFile durably writes an encoded snapshot to dir under its
// index name (tmp + rename, fsynced) and removes older snapshot files.
func WriteSnapshotFile(dir string, index uint64, encoded []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("replica: snapshot dir: %w", err)
	}
	tmp := filepath.Join(dir, "tmp.snap.partial")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("replica: snapshot write: %w", err)
	}
	if _, err := f.Write(encoded); err != nil {
		_ = f.Close()
		return fmt.Errorf("replica: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("replica: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("replica: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapName(index))); err != nil {
		return fmt.Errorf("replica: snapshot rename: %w", err)
	}
	// Older snapshots are superseded; best-effort cleanup.
	for _, idx := range listSnapshotIndices(dir) {
		if idx < index {
			_ = os.Remove(filepath.Join(dir, snapName(idx)))
		}
	}
	return nil
}

func listSnapshotIndices(dir string) []uint64 {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		idx, err := strconv.ParseUint(strings.TrimSuffix(name, snapSuffix), 10, 64)
		if err != nil {
			continue
		}
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LoadSnapshotFile returns the newest parseable snapshot in dir, or nil if
// none exists (an empty or missing dir is not an error — the replica simply
// recovers from the WAL alone). A torn newest file falls back to the next
// older one, which the superseding write had not yet removed.
func LoadSnapshotFile(dir string) (*StoreSnapshot, error) {
	if dir == "" {
		return nil, nil
	}
	idxs := listSnapshotIndices(dir)
	for i := len(idxs) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(dir, snapName(idxs[i])))
		if err != nil {
			continue
		}
		s, err := DecodeSnapshot(data)
		if err != nil {
			continue
		}
		return s, nil
	}
	return nil, nil
}

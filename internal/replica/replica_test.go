package replica

import (
	"testing"
	"time"

	"prognosticator/internal/engine"
	"prognosticator/internal/lang"
	"prognosticator/internal/raft"
	"prognosticator/internal/sequencer"
	"prognosticator/internal/store"
	"prognosticator/internal/value"
	"prognosticator/internal/wal"
)

func encodeForTest(reqs []engine.Request) ([]byte, error) {
	return sequencer.EncodeBatch(reqs)
}

func committedForTest(idx uint64, cmd []byte) raft.Committed {
	return raft.Committed{Index: idx, Term: 1, Cmd: cmd}
}

func testRegistry(t testing.TB) *engine.Registry {
	t.Helper()
	schema := lang.NewSchema(lang.TableSpec{Name: "ACC", KeyArity: 1})
	deposit := &lang.Program{
		Name:   "deposit",
		Params: []lang.Param{lang.IntParam("k", 0, 99), lang.IntParam("amt", 1, 100)},
		Body: []lang.Stmt{
			lang.GetS("a", "ACC", lang.P("k")),
			lang.SetF("a", "bal", lang.Add(lang.Fld(lang.L("a"), "bal"), lang.P("amt"))),
			lang.PutS("ACC", lang.Key(lang.P("k")), lang.L("a")),
		},
	}
	reg, err := engine.NewRegistry(schema, deposit)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func clusterConfig(t testing.TB, replicas int, workersOf func(i string) int) ClusterConfig {
	reg := testRegistry(t)
	return ClusterConfig{
		Replicas: replicas,
		Seed:     42,
		NewExecutor: func(id string, st *store.Store) (engine.Executor, error) {
			w := 2
			if workersOf != nil {
				w = workersOf(id)
			}
			return engine.New(reg, st, engine.Config{Workers: w}), nil
		},
	}
}

func deposit(k, amt int64) struct {
	TxName string
	Inputs map[string]value.Value
} {
	return struct {
		TxName string
		Inputs map[string]value.Value
	}{TxName: "deposit", Inputs: map[string]value.Value{
		"k": value.Int(k), "amt": value.Int(amt),
	}}
}

func TestClusterConvergesAcrossReplicas(t *testing.T) {
	// Replicas run with DIFFERENT worker counts: the determinism property
	// must still make all state hashes identical after every batch.
	workers := map[string]int{"replica-0": 1, "replica-1": 4, "replica-2": 8}
	c, err := NewCluster(clusterConfig(t, 3, func(id string) int { return workers[id] }))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for b := 0; b < 5; b++ {
		var reqs []struct {
			TxName string
			Inputs map[string]value.Value
		}
		for i := 0; i < 20; i++ {
			reqs = append(reqs, deposit(int64((b*7+i)%50), int64(1+i%9)))
		}
		if err := c.SubmitBatch(reqs, 10*time.Second); err != nil {
			t.Fatal(err)
		}
		if !c.Converged() {
			t.Fatalf("replicas diverged after batch %d: %v", b, c.StateHashes())
		}
	}
	for _, r := range c.Replicas {
		if r.Batches() != 5 {
			t.Fatalf("replica %s applied %d batches", r.ID, r.Batches())
		}
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
}

func TestClusterAppliesEffects(t *testing.T) {
	c, err := NewCluster(clusterConfig(t, 3, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.SubmitBatch([]struct {
		TxName string
		Inputs map[string]value.Value
	}{deposit(7, 10), deposit(7, 5)}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	for i, rep := range c.Replicas {
		st := rep.st
		rec, ok := st.Get(st.Epoch(), value.NewKey("ACC", value.Int(7)))
		if !ok {
			t.Fatalf("replica %d: ACC/7 missing", i)
		}
		if f, _ := rec.Field("bal"); f.MustInt() != 15 {
			t.Fatalf("replica %d: bal = %v", i, f)
		}
	}
}

func TestWALRecoveryRebuildsState(t *testing.T) {
	reg := testRegistry(t)
	dir := t.TempDir()
	wlog, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	exec := engine.New(reg, st, engine.Config{Workers: 2})
	rep := New("r0", exec, st, wlog)

	// Feed committed entries directly (bypassing Raft) to exercise the
	// WAL path in isolation.
	applyCh := make(chan struct {
		idx uint64
		cmd []byte
	})
	_ = applyCh
	batches := [][]byte{}
	for b := 0; b < 4; b++ {
		var reqs []engine.Request
		for i := 0; i < 10; i++ {
			reqs = append(reqs, engine.Request{TxName: "deposit",
				Inputs: map[string]value.Value{
					"k": value.Int(int64((b + i) % 20)), "amt": value.Int(int64(1 + i)),
				}})
		}
		data, err := encodeForTest(reqs)
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, data)
	}
	for i, cmd := range batches {
		if err := rep.applyOne(committedForTest(uint64(i+1), cmd)); err != nil {
			t.Fatal(err)
		}
	}
	want := rep.StateHash()
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash-recover: replay the WAL into a fresh store.
	st2 := store.New()
	exec2 := engine.New(reg, st2, engine.Config{Workers: 8})
	n, err := Recover(dir, exec2)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(batches) {
		t.Fatalf("recovered %d batches, want %d", n, len(batches))
	}
	if got := st2.StateHash(st2.Epoch()); got != want {
		t.Fatalf("recovered state hash %x != original %x", got, want)
	}
}

func TestClusterRejectsMissingFactory(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Replicas: 3}); err == nil {
		t.Fatal("missing factory must error")
	}
}

// TestClusterSurvivesLeaderCrash: killing the current leader mid-run must
// not lose convergence — the surviving replicas elect a new leader and keep
// applying identical batches.
func TestClusterSurvivesLeaderCrash(t *testing.T) {
	c, err := NewCluster(clusterConfig(t, 3, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.SubmitBatch([]struct {
		TxName string
		Inputs map[string]value.Value
	}{deposit(1, 5), deposit(2, 5)}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	li, err := c.WaitLeader(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Crash the leader (both its raft node and replica).
	c.Nodes[li].Stop()
	c.Replicas[li].Stop()
	// The survivors must still accept and apply batches.
	survivors := []int{}
	for i := range c.Replicas {
		if i != li {
			survivors = append(survivors, i)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	var idx uint64
	for {
		var leaderIdx = -1
		for _, i := range survivors {
			if role, _ := c.Nodes[i].Status(); role == raft.Leader {
				leaderIdx = i
			}
		}
		if leaderIdx >= 0 {
			d := c.Dispatchers[leaderIdx]
			d.Submit("deposit", map[string]value.Value{"k": value.Int(3), "amt": value.Int(7)})
			var err error
			idx, err = d.Flush()
			if err == nil {
				break
			}
			d.Discard()
		}
		if time.Now().After(deadline) {
			t.Fatal("no new leader accepted the batch")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for time.Now().Before(deadline) {
		done := true
		for _, i := range survivors {
			if c.Replicas[i].LastApplied() < idx {
				done = false
			}
		}
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	h0 := c.Replicas[survivors[0]].StateHash()
	h1 := c.Replicas[survivors[1]].StateHash()
	if h0 != h1 {
		t.Fatalf("survivors diverged after leader crash: %x vs %x", h0, h1)
	}
	if c.Replicas[survivors[0]].LastApplied() < idx {
		t.Fatal("post-crash batch never applied")
	}
}

// TestClusterOverTCP: the same convergence property with consensus running
// over real loopback sockets.
func TestClusterOverTCP(t *testing.T) {
	cfg := clusterConfig(t, 3, nil)
	cfg.TCP = true
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for b := 0; b < 3; b++ {
		var reqs []struct {
			TxName string
			Inputs map[string]value.Value
		}
		for i := 0; i < 15; i++ {
			reqs = append(reqs, deposit(int64(i%10), int64(1+b)))
		}
		if err := c.SubmitBatch(reqs, 20*time.Second); err != nil {
			t.Fatal(err)
		}
		if !c.Converged() {
			t.Fatalf("TCP cluster diverged after batch %d", b)
		}
	}
	if len(c.Endpoints) != 3 {
		t.Fatalf("endpoints = %d", len(c.Endpoints))
	}
}

package replica

import (
	"os"
	"testing"
	"time"

	"prognosticator/internal/engine"
	"prognosticator/internal/lang"
	"prognosticator/internal/raft"
	"prognosticator/internal/sequencer"
	"prognosticator/internal/store"
	"prognosticator/internal/value"
	"prognosticator/internal/wal"
)

func encodeForTest(reqs []engine.Request) ([]byte, error) {
	return sequencer.EncodeBatch(reqs)
}

func committedForTest(idx uint64, cmd []byte) raft.Committed {
	return raft.Committed{Index: idx, Term: 1, Cmd: cmd}
}

func testRegistry(t testing.TB) *engine.Registry {
	t.Helper()
	schema := lang.NewSchema(lang.TableSpec{Name: "ACC", KeyArity: 1})
	deposit := &lang.Program{
		Name:   "deposit",
		Params: []lang.Param{lang.IntParam("k", 0, 99), lang.IntParam("amt", 1, 100)},
		Body: []lang.Stmt{
			lang.GetS("a", "ACC", lang.P("k")),
			lang.SetF("a", "bal", lang.Add(lang.Fld(lang.L("a"), "bal"), lang.P("amt"))),
			lang.PutS("ACC", lang.Key(lang.P("k")), lang.L("a")),
		},
	}
	reg, err := engine.NewRegistry(schema, deposit)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func clusterConfig(t testing.TB, replicas int, workersOf func(i string) int) ClusterConfig {
	reg := testRegistry(t)
	return ClusterConfig{
		Replicas: replicas,
		Seed:     42,
		NewExecutor: func(id string, st *store.Store) (engine.Executor, error) {
			w := 2
			if workersOf != nil {
				w = workersOf(id)
			}
			return engine.New(reg, st, engine.Config{Workers: w}), nil
		},
	}
}

func deposit(k, amt int64) struct {
	TxName string
	Inputs map[string]value.Value
} {
	return struct {
		TxName string
		Inputs map[string]value.Value
	}{TxName: "deposit", Inputs: map[string]value.Value{
		"k": value.Int(k), "amt": value.Int(amt),
	}}
}

func TestClusterConvergesAcrossReplicas(t *testing.T) {
	// Replicas run with DIFFERENT worker counts: the determinism property
	// must still make all state hashes identical after every batch.
	workers := map[string]int{"replica-0": 1, "replica-1": 4, "replica-2": 8}
	c, err := NewCluster(clusterConfig(t, 3, func(id string) int { return workers[id] }))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for b := 0; b < 5; b++ {
		var reqs []struct {
			TxName string
			Inputs map[string]value.Value
		}
		for i := 0; i < 20; i++ {
			reqs = append(reqs, deposit(int64((b*7+i)%50), int64(1+i%9)))
		}
		if err := c.SubmitBatch(reqs, 10*time.Second); err != nil {
			t.Fatal(err)
		}
		if !c.Converged() {
			t.Fatalf("replicas diverged after batch %d: %v", b, c.StateHashes())
		}
	}
	for _, r := range c.Replicas {
		if r.Batches() != 5 {
			t.Fatalf("replica %s applied %d batches", r.ID, r.Batches())
		}
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
}

func TestClusterAppliesEffects(t *testing.T) {
	c, err := NewCluster(clusterConfig(t, 3, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.SubmitBatch([]struct {
		TxName string
		Inputs map[string]value.Value
	}{deposit(7, 10), deposit(7, 5)}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	for i, rep := range c.Replicas {
		st := rep.st
		rec, ok := st.Get(st.Epoch(), value.NewKey("ACC", value.Int(7)))
		if !ok {
			t.Fatalf("replica %d: ACC/7 missing", i)
		}
		if f, _ := rec.Field("bal"); f.MustInt() != 15 {
			t.Fatalf("replica %d: bal = %v", i, f)
		}
	}
}

func TestWALRecoveryRebuildsState(t *testing.T) {
	reg := testRegistry(t)
	dir := t.TempDir()
	wlog, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	exec := engine.New(reg, st, engine.Config{Workers: 2})
	rep := New("r0", exec, st, wlog)

	// Feed committed entries directly (bypassing Raft) to exercise the
	// WAL path in isolation.
	applyCh := make(chan struct {
		idx uint64
		cmd []byte
	})
	_ = applyCh
	batches := [][]byte{}
	for b := 0; b < 4; b++ {
		var reqs []engine.Request
		for i := 0; i < 10; i++ {
			reqs = append(reqs, engine.Request{TxName: "deposit",
				Inputs: map[string]value.Value{
					"k": value.Int(int64((b + i) % 20)), "amt": value.Int(int64(1 + i)),
				}})
		}
		data, err := encodeForTest(reqs)
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, data)
	}
	for i, cmd := range batches {
		if err := rep.applyOne(committedForTest(uint64(i+1), cmd)); err != nil {
			t.Fatal(err)
		}
	}
	want := rep.StateHash()
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash-recover: replay the WAL into a fresh store.
	st2 := store.New()
	exec2 := engine.New(reg, st2, engine.Config{Workers: 8})
	rec, err := Recover(dir, exec2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Batches != len(batches) {
		t.Fatalf("recovered %d batches, want %d", rec.Batches, len(batches))
	}
	if rec.LastIndex != uint64(len(batches)) {
		t.Fatalf("recovered last index %d, want %d", rec.LastIndex, len(batches))
	}
	if rec.WAL.Truncated {
		t.Fatal("clean WAL reported as truncated")
	}
	if got := st2.StateHash(st2.Epoch()); got != want {
		t.Fatalf("recovered state hash %x != original %x", got, want)
	}
}

// writeBatchesToWAL applies n batches through a replica backed by dir's WAL
// and returns the state hash after each batch (hashes[i] = state after batch
// i+1).
func writeBatchesToWAL(t *testing.T, dir string, n int) []uint64 {
	t.Helper()
	reg := testRegistry(t)
	wlog, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	rep := New("r0", engine.New(reg, st, engine.Config{Workers: 2}), st, wlog)
	hashes := make([]uint64, 0, n)
	for b := 0; b < n; b++ {
		var reqs []engine.Request
		for i := 0; i < 8; i++ {
			reqs = append(reqs, engine.Request{TxName: "deposit",
				Inputs: map[string]value.Value{
					"k": value.Int(int64((b*3 + i) % 20)), "amt": value.Int(int64(1 + i)),
				}})
		}
		data, err := encodeForTest(reqs)
		if err != nil {
			t.Fatal(err)
		}
		if err := rep.applyOne(committedForTest(uint64(b+1), data)); err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, rep.StateHash())
	}
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}
	return hashes
}

// TestRecoverTruncatedTail: a crash mid-append leaves a torn final record.
// Recovery must replay the intact prefix, report the loss, and leave the log
// physically truncated so new appends extend a clean prefix.
func TestRecoverTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	hashes := writeBatchesToWAL(t, dir, 5)

	segs, err := wal.SegmentPaths(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record: chop a few bytes off the segment tail.
	if err := os.Truncate(last, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	reg := testRegistry(t)
	st := store.New()
	rec, err := Recover(dir, engine.New(reg, st, engine.Config{Workers: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Batches != 4 {
		t.Fatalf("replayed %d batches after torn tail, want 4", rec.Batches)
	}
	if rec.LastIndex != 4 {
		t.Fatalf("resume index %d, want 4", rec.LastIndex)
	}
	if !rec.WAL.Truncated || rec.WAL.LostBytes <= 0 {
		t.Fatalf("loss not reported: %+v", rec.WAL)
	}
	if got := st.StateHash(st.Epoch()); got != hashes[3] {
		t.Fatalf("recovered state %x != state after 4 intact batches %x", got, hashes[3])
	}

	// The repaired log must accept appends and verify clean afterwards.
	wlog, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := wlog.Append([]byte("post-repair")); err != nil {
		t.Fatal(err)
	}
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}
	stats, err := wal.Verify(dir)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Truncated {
		t.Fatalf("log still corrupt after repair: %+v", stats)
	}
}

// TestRecoverBitFlippedTail: a flipped bit in the last record's payload fails
// its checksum; recovery replays only the records before it.
func TestRecoverBitFlippedTail(t *testing.T) {
	dir := t.TempDir()
	hashes := writeBatchesToWAL(t, dir, 5)

	segs, err := wal.SegmentPaths(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(last, data, 0o644); err != nil {
		t.Fatal(err)
	}

	reg := testRegistry(t)
	st := store.New()
	rec, err := Recover(dir, engine.New(reg, st, engine.Config{Workers: 4}))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Batches != 4 {
		t.Fatalf("replayed %d batches after bit flip, want 4", rec.Batches)
	}
	if !rec.WAL.Truncated {
		t.Fatalf("corruption not reported: %+v", rec.WAL)
	}
	if got := st.StateHash(st.Epoch()); got != hashes[3] {
		t.Fatalf("recovered state %x != state after 4 intact batches %x", got, hashes[3])
	}
}

// TestApplyDeduplicatesBatchID: the same idempotency ID committed at two raft
// indices executes once; recovery replays exactly one occurrence and rebuilds
// the dedup table.
func TestApplyDeduplicatesBatchID(t *testing.T) {
	reg := testRegistry(t)
	dir := t.TempDir()
	wlog, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := store.New()
	rep := New("r0", engine.New(reg, st, engine.Config{Workers: 2}), st, wlog)

	reqs := []engine.Request{{TxName: "deposit",
		Inputs: map[string]value.Value{"k": value.Int(1), "amt": value.Int(10)}}}
	data, err := sequencer.EncodeBatchID("batch-A", reqs)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.applyOne(committedForTest(1, data)); err != nil {
		t.Fatal(err)
	}
	want := rep.StateHash()
	// The duplicate (resubmitted after an ambiguous outcome) commits again at
	// index 2: it must be skipped, not double-deposited.
	if err := rep.applyOne(committedForTest(2, data)); err != nil {
		t.Fatal(err)
	}
	if rep.Batches() != 1 || rep.Deduped() != 1 {
		t.Fatalf("batches=%d deduped=%d, want 1/1", rep.Batches(), rep.Deduped())
	}
	if rep.LastApplied() != 2 {
		t.Fatalf("lastApplied=%d, want 2 (dup advances the watermark)", rep.LastApplied())
	}
	if rep.StateHash() != want {
		t.Fatal("duplicate batch changed state")
	}
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery sees only the first occurrence (dups are not logged).
	st2 := store.New()
	rec, err := Recover(dir, engine.New(reg, st2, engine.Config{Workers: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Batches != 1 {
		t.Fatalf("recovered %d batches, want 1", rec.Batches)
	}
	if idx, ok := rec.AppliedIDs["batch-A"]; !ok || idx != 1 {
		t.Fatalf("dedup table not rebuilt: %v", rec.AppliedIDs)
	}
	if got := st2.StateHash(st2.Epoch()); got != want {
		t.Fatalf("recovered state %x != original %x", got, want)
	}
}

// TestClusterCrashRestartCatchUp: crash a follower mid-workload, keep
// submitting, restart it, and require it to recover its WAL prefix and catch
// up through Raft to full convergence.
func TestClusterCrashRestartCatchUp(t *testing.T) {
	cfg := clusterConfig(t, 3, nil)
	cfg.DataDir = t.TempDir()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	submit := func(n int) {
		t.Helper()
		for b := 0; b < n; b++ {
			var reqs []struct {
				TxName string
				Inputs map[string]value.Value
			}
			for i := 0; i < 10; i++ {
				reqs = append(reqs, deposit(int64(i%12), int64(1+i)))
			}
			if err := c.SubmitBatch(reqs, 15*time.Second); err != nil {
				t.Fatal(err)
			}
		}
	}

	submit(3)
	li, err := c.WaitLeader(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Crash a follower so the remaining pair keeps committing.
	victim := (li + 1) % c.Size()
	if err := c.Crash(victim); err != nil {
		t.Fatal(err)
	}
	if !c.IsDown(victim) || len(c.DownReplicas()) != 1 {
		t.Fatal("down bookkeeping wrong after crash")
	}
	submit(3)

	if err := c.Restart(victim); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitCaughtUp(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if !c.Converged() {
		t.Fatalf("restarted replica diverged: %v", c.StateHashes())
	}
	rep := c.ReplicaAt(victim)
	if rep.Batches() != 6 {
		t.Fatalf("restarted replica reflects %d batches, want 6", rep.Batches())
	}
	// Raft re-delivered the recovered prefix; the replica must have skipped it.
	if rep.Redelivered() == 0 {
		t.Fatal("expected redelivered entries to be skipped after restart")
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
}

func TestClusterRejectsMissingFactory(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Replicas: 3}); err == nil {
		t.Fatal("missing factory must error")
	}
}

// TestClusterSurvivesLeaderCrash: killing the current leader mid-run must
// not lose convergence — the surviving replicas elect a new leader and keep
// applying identical batches.
func TestClusterSurvivesLeaderCrash(t *testing.T) {
	c, err := NewCluster(clusterConfig(t, 3, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.SubmitBatch([]struct {
		TxName string
		Inputs map[string]value.Value
	}{deposit(1, 5), deposit(2, 5)}, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	li, err := c.WaitLeader(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Crash the leader (both its raft node and replica).
	c.Nodes[li].Stop()
	c.Replicas[li].Stop()
	// The survivors must still accept and apply batches.
	survivors := []int{}
	for i := range c.Replicas {
		if i != li {
			survivors = append(survivors, i)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	var idx uint64
	for {
		var leaderIdx = -1
		for _, i := range survivors {
			if role, _ := c.Nodes[i].Status(); role == raft.Leader {
				leaderIdx = i
			}
		}
		if leaderIdx >= 0 {
			d := c.Dispatchers[leaderIdx]
			d.Submit("deposit", map[string]value.Value{"k": value.Int(3), "amt": value.Int(7)})
			var err error
			idx, err = d.Flush()
			if err == nil {
				break
			}
			d.Discard()
		}
		if time.Now().After(deadline) {
			t.Fatal("no new leader accepted the batch")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for time.Now().Before(deadline) {
		done := true
		for _, i := range survivors {
			if c.Replicas[i].LastApplied() < idx {
				done = false
			}
		}
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	h0 := c.Replicas[survivors[0]].StateHash()
	h1 := c.Replicas[survivors[1]].StateHash()
	if h0 != h1 {
		t.Fatalf("survivors diverged after leader crash: %x vs %x", h0, h1)
	}
	if c.Replicas[survivors[0]].LastApplied() < idx {
		t.Fatal("post-crash batch never applied")
	}
}

// TestClusterOverTCP: the same convergence property with consensus running
// over real loopback sockets.
func TestClusterOverTCP(t *testing.T) {
	cfg := clusterConfig(t, 3, nil)
	cfg.TCP = true
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for b := 0; b < 3; b++ {
		var reqs []struct {
			TxName string
			Inputs map[string]value.Value
		}
		for i := 0; i < 15; i++ {
			reqs = append(reqs, deposit(int64(i%10), int64(1+b)))
		}
		if err := c.SubmitBatch(reqs, 20*time.Second); err != nil {
			t.Fatal(err)
		}
		if !c.Converged() {
			t.Fatalf("TCP cluster diverged after batch %d", b)
		}
	}
	if len(c.Endpoints) != 3 {
		t.Fatalf("endpoints = %d", len(c.Endpoints))
	}
}

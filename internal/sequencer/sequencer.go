// Package sequencer implements the Client Request Dispatcher of the paper's
// architecture (§III-A, Fig. 1): it collects incoming transaction requests
// into batches and runs them through consensus (internal/raft) so that every
// replica receives the same batches in the same order. Sequence numbers are
// derived from the Raft log position, so all replicas assign identical
// sequence numbers without further coordination.
package sequencer

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"prognosticator/internal/engine"
	"prognosticator/internal/flowctl"
	"prognosticator/internal/raft"
	"prognosticator/internal/value"
)

// ErrNotLeader is returned by Flush when this dispatcher's Raft node is not
// the current leader; the caller should retry on the hinted node.
var ErrNotLeader = errors.New("sequencer: not leader")

// Batch is the unit of consensus: an ordered list of transaction
// invocations. Request sequence numbers are assigned at decode time from
// the Raft index, so they are identical on every replica. ID, when
// non-empty, is a client-assigned idempotency token: a batch resubmitted
// after an ambiguous failure (leader change mid-submit) carries the same ID
// and is deduplicated at apply time instead of double-executing.
type Batch struct {
	ID       string
	Requests []engine.Request
}

// wire representation.
type wireBatch struct {
	ID       string        `json:"id,omitempty"`
	Requests []wireRequest `json:"reqs"`
}

type wireRequest struct {
	TxName string                 `json:"tx"`
	Inputs map[string]value.Value `json:"in"`
}

// EncodeBatch serializes a batch for proposal without an idempotency ID.
func EncodeBatch(reqs []engine.Request) ([]byte, error) {
	return EncodeBatchID("", reqs)
}

// EncodeBatchID serializes a batch carrying the given idempotency ID (empty
// disables apply-time deduplication for this batch).
func EncodeBatchID(id string, reqs []engine.Request) ([]byte, error) {
	wb := wireBatch{ID: id, Requests: make([]wireRequest, len(reqs))}
	for i, r := range reqs {
		wb.Requests[i] = wireRequest{TxName: r.TxName, Inputs: r.Inputs}
	}
	data, err := json.Marshal(wb)
	if err != nil {
		return nil, fmt.Errorf("sequencer: encode: %w", err)
	}
	return data, nil
}

// seqStride spaces per-batch sequence numbers; a batch may hold at most
// seqStride requests.
const seqStride = 1 << 20

// DecodeCommitted turns a committed Raft entry back into requests with
// replica-consistent sequence numbers derived from the log index.
func DecodeCommitted(c raft.Committed) ([]engine.Request, error) {
	b, err := DecodeBatch(c)
	if err != nil {
		return nil, err
	}
	return b.Requests, nil
}

// DecodeBatch is DecodeCommitted returning the full batch, including the
// idempotency ID the submitter attached (empty when none).
func DecodeBatch(c raft.Committed) (Batch, error) {
	var wb wireBatch
	if err := json.Unmarshal(c.Cmd, &wb); err != nil {
		return Batch{}, fmt.Errorf("sequencer: decode batch at index %d: %w", c.Index, err)
	}
	if len(wb.Requests) > seqStride {
		return Batch{}, fmt.Errorf("sequencer: batch at index %d has %d requests (max %d)",
			c.Index, len(wb.Requests), seqStride)
	}
	b := Batch{ID: wb.ID, Requests: make([]engine.Request, len(wb.Requests))}
	for i, wr := range wb.Requests {
		b.Requests[i] = engine.Request{
			Seq:    c.Index*seqStride + uint64(i),
			TxName: wr.TxName,
			Inputs: wr.Inputs,
		}
	}
	return b, nil
}

// Dispatcher buffers client requests and proposes them as batches through
// its Raft node. Safe for concurrent use.
type Dispatcher struct {
	node     *raft.Node
	mu       sync.Mutex
	buf      []engine.Request
	maxQueue int // 0 = unbounded
	queueHW  int
	shed     int
	prewarm  func(txName string, inputs map[string]value.Value)
}

// NewDispatcher returns a dispatcher proposing through node.
func NewDispatcher(node *raft.Node) *Dispatcher {
	return &Dispatcher{node: node}
}

// SetPrewarm registers a hook invoked on every Submit with the request's
// transaction name and inputs — the paper's client-side prediction done at
// dispatch time: engine.Registry.DirectPrewarmer uses it to instantiate the
// input-only key-sets of pivot-free DTs into a shared memo while the batch
// is still being buffered, so the replicas' preparation phase hits the
// cache. The hook runs outside the dispatcher lock.
func (d *Dispatcher) SetPrewarm(fn func(txName string, inputs map[string]value.Value)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.prewarm = fn
}

// SetMaxQueue bounds the buffered request queue: a Submit that would push the
// depth past n sheds with flowctl.ErrOverload instead of growing the buffer
// (0 restores the unbounded default). The bound is what keeps a stalled
// leader from turning into unbounded dispatcher memory under sustained
// submit pressure.
func (d *Dispatcher) SetMaxQueue(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.maxQueue = n
}

// QueueHighWater returns the deepest the request queue has ever been — the
// soak assertion that the configured bound actually held.
func (d *Dispatcher) QueueHighWater() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.queueHW
}

// Shed returns how many Submits were rejected by the queue bound.
func (d *Dispatcher) Shed() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.shed
}

// Submit buffers one request for the next batch. With a queue bound set it
// sheds deterministically — the request is rejected with an error wrapping
// flowctl.ErrOverload, never queued — once the buffer is full. The error
// may be ignored by callers running without a bound (the zero-config
// dispatcher never sheds).
func (d *Dispatcher) Submit(txName string, inputs map[string]value.Value) error {
	d.mu.Lock()
	if d.maxQueue > 0 && len(d.buf) >= d.maxQueue {
		d.shed++
		d.mu.Unlock()
		return fmt.Errorf("%w: dispatcher queue full (%d buffered)", flowctl.ErrOverload, d.maxQueue)
	}
	fn := d.prewarm
	d.buf = append(d.buf, engine.Request{TxName: txName, Inputs: inputs})
	if len(d.buf) > d.queueHW {
		d.queueHW = len(d.buf)
	}
	d.mu.Unlock()
	if fn != nil {
		fn(txName, inputs)
	}
	return nil
}

// Discard drops any buffered requests (used when a caller re-routes a
// batch to a different node after a leadership change).
func (d *Dispatcher) Discard() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buf = d.buf[:0]
}

// CommitIndex exposes the underlying node's commit index — the submit layer
// reads it at acknowledgment time to derive the dedup pruning watermark.
func (d *Dispatcher) CommitIndex() uint64 {
	return d.node.CommitIndex()
}

// Pending returns the number of buffered requests.
func (d *Dispatcher) Pending() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.buf)
}

// Flush proposes the buffered requests as one batch without an idempotency
// ID. It returns the Raft index assigned to the batch. On ErrNotLeader the
// buffer is preserved so the client can retry after re-routing.
func (d *Dispatcher) Flush() (uint64, error) {
	return d.FlushAs("")
}

// FlushAs is Flush with an explicit idempotency ID. A caller that must
// resubmit a batch after an ambiguous outcome (the proposal may or may not
// have committed before leadership moved) re-flushes the same requests with
// the same ID through the new leader; replicas apply the first committed
// occurrence and skip any later duplicate.
func (d *Dispatcher) FlushAs(id string) (uint64, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.buf) == 0 {
		return 0, nil
	}
	data, err := EncodeBatchID(id, d.buf)
	if err != nil {
		return 0, err
	}
	idx, _, ok := d.node.Propose(data)
	if !ok {
		return 0, fmt.Errorf("%w (hint: %s)", ErrNotLeader, d.node.LeaderHint())
	}
	d.buf = d.buf[:0]
	return idx, nil
}

// ProposeBatch proposes reqs as one batch with the given idempotency ID,
// bypassing the shared buffer entirely: the batch is encoded and handed to
// Raft in a single step, so concurrent submitters can never interleave their
// requests into each other's batches (Submit+FlushAs is only batch-atomic
// for a serial caller). The prewarm hook still runs for every request. On
// ErrNotLeader nothing is retained — the caller re-routes and re-proposes.
func (d *Dispatcher) ProposeBatch(id string, reqs []engine.Request) (uint64, error) {
	d.mu.Lock()
	fn := d.prewarm
	d.mu.Unlock()
	if fn != nil {
		for _, r := range reqs {
			fn(r.TxName, r.Inputs)
		}
	}
	data, err := EncodeBatchID(id, reqs)
	if err != nil {
		return 0, err
	}
	idx, _, ok := d.node.Propose(data)
	if !ok {
		return 0, fmt.Errorf("%w (hint: %s)", ErrNotLeader, d.node.LeaderHint())
	}
	return idx, nil
}

package sequencer

import (
	"errors"
	"prognosticator/internal/vclock"
	"testing"
	"time"

	"prognosticator/internal/engine"
	"prognosticator/internal/flowctl"
	"prognosticator/internal/memnet"
	"prognosticator/internal/raft"
	"prognosticator/internal/value"
)

func TestBatchCodecRoundTrip(t *testing.T) {
	reqs := []engine.Request{
		{TxName: "a", Inputs: map[string]value.Value{"x": value.Int(1)}},
		{TxName: "b", Inputs: map[string]value.Value{
			"s": value.Str("hello"), "l": value.List(value.Int(1), value.Int(2)),
		}},
	}
	data, err := EncodeBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCommitted(raft.Committed{Index: 3, Cmd: data})
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("decoded %d requests", len(back))
	}
	// Sequence numbers derive from the raft index.
	if back[0].Seq != 3*seqStride || back[1].Seq != 3*seqStride+1 {
		t.Fatalf("seqs = %d, %d", back[0].Seq, back[1].Seq)
	}
	if back[0].TxName != "a" || !back[0].Inputs["x"].Equal(value.Int(1)) {
		t.Fatalf("request 0 = %+v", back[0])
	}
	if !back[1].Inputs["l"].Equal(value.List(value.Int(1), value.Int(2))) {
		t.Fatalf("request 1 inputs = %+v", back[1].Inputs)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeCommitted(raft.Committed{Index: 1, Cmd: []byte("{bad")}); err == nil {
		t.Fatal("malformed batch must error")
	}
}

func TestSeqOrderingAcrossBatches(t *testing.T) {
	// Seq numbers from a later raft index always exceed those from an
	// earlier one — the global total order the engine relies on.
	b1, _ := EncodeBatch(make([]engine.Request, 3))
	b2, _ := EncodeBatch(make([]engine.Request, 3))
	r1, err := DecodeCommitted(raft.Committed{Index: 1, Cmd: b1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := DecodeCommitted(raft.Committed{Index: 2, Cmd: b2})
	if err != nil {
		t.Fatal(err)
	}
	if r1[len(r1)-1].Seq >= r2[0].Seq {
		t.Fatalf("batch seq ranges overlap: %d vs %d", r1[len(r1)-1].Seq, r2[0].Seq)
	}
}

func TestDispatcherFlushThroughRaft(t *testing.T) {
	net := memnet.New(1)
	node := raft.NewNode("n0", []string{"n0"}, net, raft.Config{
		ElectionTimeoutMin: 20 * time.Millisecond,
		ElectionTimeoutMax: 40 * time.Millisecond,
		HeartbeatInterval:  10 * time.Millisecond,
	}, 1)
	node.Start()
	defer node.Stop()
	defer net.Close()
	// Wait for self-election.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if role, _ := node.Status(); role == raft.Leader {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("single node did not become leader")
		}
		vclock.Wall.Sleep(5 * time.Millisecond)
	}
	d := NewDispatcher(node)
	if idx, err := d.Flush(); err != nil || idx != 0 {
		t.Fatalf("empty flush = %d, %v", idx, err)
	}
	d.Submit("tx1", map[string]value.Value{"x": value.Int(7)})
	d.Submit("tx2", nil)
	if d.Pending() != 2 {
		t.Fatalf("pending = %d", d.Pending())
	}
	idx, err := d.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if d.Pending() != 0 {
		t.Fatal("buffer not cleared after flush")
	}
	// The committed entry decodes back to the submitted batch.
	select {
	case c := <-node.Apply():
		if c.Index != idx {
			t.Fatalf("applied index %d, want %d", c.Index, idx)
		}
		reqs, err := DecodeCommitted(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(reqs) != 2 || reqs[0].TxName != "tx1" || reqs[1].TxName != "tx2" {
			t.Fatalf("decoded %+v", reqs)
		}
	case <-vclock.Wall.After(2 * time.Second):
		t.Fatal("batch never committed")
	}
}

// TestDispatcherQueueShedding pins the bounded-queue admission behavior:
// with SetMaxQueue the dispatcher sheds (never queues) excess submits with
// an error wrapping flowctl.ErrOverload, the high-water mark stops at the
// bound, and draining the buffer re-opens admission.
func TestDispatcherQueueShedding(t *testing.T) {
	d := NewDispatcher(nil)
	d.SetMaxQueue(3)
	for i := 0; i < 3; i++ {
		if err := d.Submit("tx", nil); err != nil {
			t.Fatalf("submit %d under the bound rejected: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		err := d.Submit("tx", nil)
		if !errors.Is(err, flowctl.ErrOverload) {
			t.Fatalf("over-bound submit error = %v, want flowctl.ErrOverload", err)
		}
	}
	if d.Pending() != 3 {
		t.Fatalf("pending = %d, want 3 (shed submits must not be queued)", d.Pending())
	}
	if hw := d.QueueHighWater(); hw != 3 {
		t.Fatalf("queue high water = %d, want 3", hw)
	}
	if shed := d.Shed(); shed != 2 {
		t.Fatalf("shed = %d, want 2", shed)
	}
	d.Discard()
	if err := d.Submit("tx", nil); err != nil {
		t.Fatalf("submit after discard rejected: %v", err)
	}
	// Unlimited by default: a zero bound never sheds.
	u := NewDispatcher(nil)
	for i := 0; i < 64; i++ {
		if err := u.Submit("tx", nil); err != nil {
			t.Fatalf("unbounded submit %d rejected: %v", i, err)
		}
	}
}

func TestFlushNotLeader(t *testing.T) {
	net := memnet.New(2)
	// Two-node cluster where the peer does not exist: n0 can never win an
	// election... it needs 2 votes of 2. It stays follower/candidate.
	node := raft.NewNode("n0", []string{"n0", "ghost"}, net, raft.Config{
		ElectionTimeoutMin: 10 * time.Millisecond,
		ElectionTimeoutMax: 20 * time.Millisecond,
		HeartbeatInterval:  5 * time.Millisecond,
	}, 2)
	node.Start()
	defer node.Stop()
	defer net.Close()
	d := NewDispatcher(node)
	d.Submit("tx", nil)
	_, err := d.Flush()
	if !errors.Is(err, ErrNotLeader) {
		t.Fatalf("err = %v, want ErrNotLeader", err)
	}
	if d.Pending() != 1 {
		t.Fatal("buffer must survive a failed flush")
	}
}

// TestDispatcherPrewarm checks the submit-path hook: it fires once per
// Submit with the request's name and inputs, and Submit keeps working (and
// never fires the hook) when none is registered.
func TestDispatcherPrewarm(t *testing.T) {
	d := NewDispatcher(nil) // Submit never touches the raft node
	d.Submit("cold", nil)

	type call struct {
		tx     string
		inputs map[string]value.Value
	}
	var calls []call
	d.SetPrewarm(func(txName string, inputs map[string]value.Value) {
		calls = append(calls, call{txName, inputs})
	})
	in := map[string]value.Value{"x": value.Int(7)}
	d.Submit("tx1", in)
	d.Submit("tx2", nil)
	if d.Pending() != 3 {
		t.Fatalf("pending = %d, want 3", d.Pending())
	}
	if len(calls) != 2 || calls[0].tx != "tx1" || calls[1].tx != "tx2" {
		t.Fatalf("prewarm calls = %+v", calls)
	}
	if v, ok := calls[0].inputs["x"]; !ok || !v.Equal(value.Int(7)) {
		t.Fatalf("prewarm inputs = %v", calls[0].inputs)
	}
}

package sequencer

import (
	"strings"
	"testing"

	"prognosticator/internal/engine"
	"prognosticator/internal/raft"
	"prognosticator/internal/value"
)

// buildFuzzBatch derives a batch of requests from raw fuzz bytes: each byte
// pair picks a transaction name and one input value of a fuzzer-chosen kind,
// exercising every value.Value kind the wire codec must round-trip.
func buildFuzzBatch(data []byte) []engine.Request {
	var reqs []engine.Request
	for len(data) >= 2 {
		tx := []string{"pay", "newOrder", "transfer", "audit"}[data[0]%4]
		n := int(data[0]%3) + 1
		inputs := map[string]value.Value{}
		data = data[1:]
		for p := 0; p < n && len(data) >= 2; p++ {
			name := string(rune('a' + data[0]%6))
			switch data[1] % 5 {
			case 0:
				inputs[name] = value.Int(int64(data[1]) - 128)
			case 1:
				inputs[name] = value.Str(strings.Repeat(string(rune('k'+data[1]%10)), int(data[1]%7)))
			case 2:
				inputs[name] = value.Bool(data[1]%2 == 0)
			case 3:
				inputs[name] = value.List(value.Int(int64(data[1])), value.Str("e"))
			default:
				inputs[name] = value.Record(map[string]value.Value{
					"f": value.Int(int64(data[1])), "g": value.Bool(data[1]%2 == 0),
				})
			}
			data = data[2:]
		}
		reqs = append(reqs, engine.Request{TxName: tx, Inputs: inputs})
	}
	return reqs
}

func sameRequests(a, b []engine.Request) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].TxName != b[i].TxName || len(a[i].Inputs) != len(b[i].Inputs) {
			return false
		}
		for k, v := range a[i].Inputs {
			w, ok := b[i].Inputs[k]
			if !ok || !v.Equal(w) {
				return false
			}
		}
	}
	return true
}

// FuzzBatchRoundTrip drives the sequencer wire codec from two directions.
// Structured: a batch built from the fuzz bytes must survive
// EncodeBatchID -> DecodeBatch exactly — same ID, same requests, sequence
// numbers derived from the commit index — and re-encode byte-identically
// (the codec is canonical, which is what lets idempotency IDs and dedup
// hashes compare encoded bytes). Raw: DecodeBatch on the same bytes as an
// arbitrary committed command must never panic, and anything it accepts must
// itself round-trip.
func FuzzBatchRoundTrip(f *testing.F) {
	f.Add("", uint64(1), []byte{})
	f.Add("batch-7", uint64(7), []byte{0, 0, 1, 1, 2, 2, 3, 3, 4, 4})
	f.Add("retry", uint64(1<<40), []byte{3, 128, 2, 64, 1, 200, 0, 17})
	f.Add("", uint64(0), []byte(`{"id":"x","reqs":[{"tx":"t","in":null}]}`))
	f.Add("dup", uint64(9), []byte(`{"reqs":[]}`))
	f.Fuzz(func(t *testing.T, id string, idx uint64, data []byte) {
		// JSON strings only round-trip valid UTF-8; canonicalize the ID the
		// same way the encoder's output would arrive back.
		id = strings.ToValidUTF8(id, "�")
		reqs := buildFuzzBatch(data)
		enc, err := EncodeBatchID(id, reqs)
		if err != nil {
			t.Fatalf("encode built batch: %v", err)
		}
		b, err := DecodeBatch(raft.Committed{Index: idx, Cmd: enc})
		if err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if b.ID != id {
			t.Fatalf("ID %q round-tripped to %q", id, b.ID)
		}
		if !sameRequests(reqs, b.Requests) {
			t.Fatalf("requests did not round-trip:\nin:  %+v\nout: %+v", reqs, b.Requests)
		}
		for i, r := range b.Requests {
			if want := idx*seqStride + uint64(i); r.Seq != want {
				t.Fatalf("request %d: Seq = %d, want %d (index %d)", i, r.Seq, want, idx)
			}
		}
		enc2, err := EncodeBatchID(b.ID, b.Requests)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if string(enc) != string(enc2) {
			t.Fatalf("encoding not canonical:\n1st: %s\n2nd: %s", enc, enc2)
		}

		// Raw direction: arbitrary bytes must decode cleanly or error, never
		// panic; an accepted command must round-trip through the encoder.
		rb, err := DecodeBatch(raft.Committed{Index: idx, Cmd: data})
		if err != nil {
			return
		}
		renc, err := EncodeBatchID(rb.ID, rb.Requests)
		if err != nil {
			t.Fatalf("re-encode accepted raw command: %v", err)
		}
		rb2, err := DecodeBatch(raft.Committed{Index: idx, Cmd: renc})
		if err != nil {
			t.Fatalf("decode re-encoded raw command: %v", err)
		}
		if rb2.ID != rb.ID || !sameRequests(rb.Requests, rb2.Requests) {
			t.Fatalf("accepted raw command did not round-trip:\n1st: %+v\n2nd: %+v", rb, rb2)
		}
	})
}

package harness

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// This file renders experiment results as aligned text tables (matching the
// paper's tables/figures row-for-row) and as CSV for plotting.

// RenderTableI renders the SE-analysis cost table.
func RenderTableI(rows []TableIRow) string {
	var sb strings.Builder
	sb.WriteString("Table I: SE analysis of update transactions (optimized / unoptimized)\n")
	fmt.Fprintf(&sb, "%-32s %18s %12s %10s %9s %22s %22s\n",
		"Transaction", "States expl/total", "Depth opt/max", "Key-sets", "Indirect",
		"Memory opt/unopt", "Time opt/unopt")
	for _, r := range rows {
		est := ""
		if r.Extrapolated {
			est = "~"
		}
		fmt.Fprintf(&sb, "%-32s %9d/%-8s %7d/%-5d %10d %9d %10s/%s%-10s %11s/%s%-10s\n",
			r.Name,
			r.StatesExplored, fmtBig(r.TotalStates),
			r.Depth, r.DepthMax,
			r.UniqueKeySets, r.IndirectKeys,
			fmtBytes(r.MemOpt), est, fmtBytes(r.MemUnopt),
			fmtDur(r.TimeOpt), est, fmtDur(r.TimeUnopt))
	}
	return sb.String()
}

// RenderComparison renders Fig. 3 / Fig. 4 rows (throughput + abort rate).
func RenderComparison(title string, rows []ComparisonRow) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	fmt.Fprintf(&sb, "%-14s %-12s %14s %12s %10s %10s\n",
		"Workload", "System", "Throughput", "AbortRate", "BatchSize", "p99")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %-12s %11.0f/s %10.2f%% %10d %10s\n",
			r.Workload, r.System, r.Throughput, r.AbortPct, r.BatchSize, fmtDur(r.P99))
	}
	return sb.String()
}

// RenderVariants renders Fig. 5 rows (variant throughput + time breakdown).
func RenderVariants(rows []VariantRow) string {
	var sb strings.Builder
	sb.WriteString("Fig. 5: Prognosticator variants (throughput, prepare/re-exec time)\n")
	fmt.Fprintf(&sb, "%-14s %-10s %14s %12s %12s %10s\n",
		"Workload", "Variant", "Throughput", "MeanPrepare", "MeanReexec", "AbortRate")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %-10s %11.0f/s %12s %12s %9.2f%%\n",
			r.Workload, r.Variant, r.Throughput,
			fmtDur(r.MeanPrepare), fmtDur(r.MeanReexec), r.AbortPct)
	}
	return sb.String()
}

// ComparisonCSV renders comparison rows as CSV.
func ComparisonCSV(rows []ComparisonRow) string {
	var sb strings.Builder
	sb.WriteString("workload,system,throughput_tps,abort_pct,batch_size,p99_us\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s,%s,%.1f,%.3f,%d,%d\n",
			r.Workload, r.System, r.Throughput, r.AbortPct, r.BatchSize, r.P99.Microseconds())
	}
	return sb.String()
}

// VariantsCSV renders variant rows as CSV.
func VariantsCSV(rows []VariantRow) string {
	var sb strings.Builder
	sb.WriteString("workload,variant,throughput_tps,mean_prepare_us,mean_reexec_us,abort_pct\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%s,%s,%.1f,%d,%d,%.3f\n",
			r.Workload, r.Variant, r.Throughput,
			r.MeanPrepare.Microseconds(), r.MeanReexec.Microseconds(), r.AbortPct)
	}
	return sb.String()
}

// TableICSV renders Table I as CSV.
func TableICSV(rows []TableIRow) string {
	var sb strings.Builder
	sb.WriteString("transaction,states_explored,total_states,depth_opt,depth_max,key_sets,indirect_keys,mem_opt_bytes,mem_unopt_bytes,time_opt_us,time_unopt_us,extrapolated\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%q,%d,%.0f,%d,%d,%d,%d,%d,%d,%d,%d,%t\n",
			r.Name, r.StatesExplored, r.TotalStates, r.Depth, r.DepthMax,
			r.UniqueKeySets, r.IndirectKeys, r.MemOpt, r.MemUnopt,
			r.TimeOpt.Microseconds(), r.TimeUnopt.Microseconds(), r.Extrapolated)
	}
	return sb.String()
}

// Speedups summarises, per workload, each system's throughput relative to
// the slowest — the "who wins by how much" shape check for EXPERIMENTS.md.
func Speedups(rows []ComparisonRow) map[string]map[string]float64 {
	byWL := map[string][]ComparisonRow{}
	for _, r := range rows {
		byWL[r.Workload] = append(byWL[r.Workload], r)
	}
	out := map[string]map[string]float64{}
	for wl, rs := range byWL {
		minT := rs[0].Throughput
		for _, r := range rs {
			if r.Throughput < minT && r.Throughput > 0 {
				minT = r.Throughput
			}
		}
		if minT <= 0 {
			continue
		}
		out[wl] = map[string]float64{}
		for _, r := range rs {
			out[wl][r.System] = r.Throughput / minT
		}
	}
	return out
}

func fmtBig(v float64) string {
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%.1fT", v/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e4:
		return fmt.Sprintf("%.0fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d >= 24*time.Hour:
		return fmt.Sprintf("%.1fd", d.Hours()/24)
	case d >= time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// SortRows orders comparison rows by workload then system for stable output.
func SortRows(rows []ComparisonRow) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Workload != rows[j].Workload {
			return rows[i].Workload < rows[j].Workload
		}
		return rows[i].System < rows[j].System
	})
}

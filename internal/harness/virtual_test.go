package harness

import (
	"testing"
	"time"

	"prognosticator/internal/engine"
)

func virtualOpts() Options {
	return Options{
		BatchInterval: 10 * time.Millisecond,
		P99SLA:        10 * time.Millisecond,
		Batches:       10,
		Warmup:        2,
		StartSize:     8,
		MaxSize:       128,
		Growth:        2,
		Workers:       8,
		Seed:          1,
		Virtual:       true,
	}
}

// TestVirtualRunPointDeterministic: the cost-model simulator must yield
// bit-identical figures across repeated runs — the property that makes the
// benchmark results reproducible.
func TestVirtualRunPointDeterministic(t *testing.T) {
	wl, err := TPCCWorkload(tinyTPCC(2))
	if err != nil {
		t.Fatal(err)
	}
	sys := SimPrognosticatorSystem("MQ-MF", engineConfigMQMF())
	first, err := RunPoint(sys, wl, 16, virtualOpts())
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 2; run++ {
		pt, err := RunPoint(sys, wl, 16, virtualOpts())
		if err != nil {
			t.Fatal(err)
		}
		if pt.P99 != first.P99 || pt.Throughput != first.Throughput || pt.AbortPct != first.AbortPct {
			t.Fatalf("virtual run diverged: %+v vs %+v", pt, first)
		}
	}
	if first.Throughput <= 0 || first.P99 <= 0 {
		t.Fatalf("degenerate point: %+v", first)
	}
}

// TestVirtualParallelismShapesThroughput: the simulated MQ-MF engine with
// many virtual workers must sustain clearly more than the sequential
// baseline at low contention — the paper's Fig. 3a backbone, impossible to
// demonstrate with real threads on a single-core host.
func TestVirtualParallelismShapesThroughput(t *testing.T) {
	wl, err := TPCCWorkload(tinyTPCC(8))
	if err != nil {
		t.Fatal(err)
	}
	opts := virtualOpts()
	opts.Workers = 16
	mqmf, err := MaxSustainable(SimPrognosticatorSystem("MQ-MF", engineConfigMQMF()), wl, opts)
	if err != nil {
		t.Fatal(err)
	}
	seqSys := System{Name: "SEQ", New: SimComparisonSystems()[5].New}
	seq, err := MaxSustainable(seqSys, wl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if mqmf.Best.Throughput < 2*seq.Best.Throughput {
		t.Fatalf("MQ-MF (%v) should beat SEQ (%v) by >= 2x at low contention",
			mqmf.Best.Throughput, seq.Best.Throughput)
	}
}

// TestVirtualReconSlowerThanSE: the -R variants must pay more preparation
// time than the SE variants — the paper's Fig. 5 core claim, structural in
// the cost model.
func TestVirtualReconSlowerThanSE(t *testing.T) {
	wl, err := TPCCWorkload(tinyTPCC(4))
	if err != nil {
		t.Fatal(err)
	}
	opts := virtualOpts()
	se, err := RunPoint(SimPrognosticatorSystem("MQ-MF", engineConfigMQMF()), wl, 32, opts)
	if err != nil {
		t.Fatal(err)
	}
	rCfg := engine.Config{Queue: engine.QueueMulti, Fail: engine.FailReenqueue, Prepare: engine.PrepareRecon}
	recon, err := RunPoint(SimPrognosticatorSystem("MQ-MF-R", rCfg), wl, 32, opts)
	if err != nil {
		t.Fatal(err)
	}
	if recon.MeanPrepare <= se.MeanPrepare {
		t.Fatalf("recon prepare (%v) must exceed SE prepare (%v)",
			recon.MeanPrepare, se.MeanPrepare)
	}
}

// TestVirtualMatchesRealState: the harness-level wiring of the simulator
// must evolve the same store state as the threaded engine over a full
// sweep point.
func TestVirtualMatchesRealState(t *testing.T) {
	wl, err := TPCCWorkload(tinyTPCC(1))
	if err != nil {
		t.Fatal(err)
	}
	opts := virtualOpts()
	opts.Batches = 6
	// Run identical request streams through a sim executor and a real
	// executor outside the harness, then compare.
	stSim := wl.NewStore()
	sim := engine.NewSim(wl.Registry, stSim, engineConfigMQMF())
	stReal := wl.NewStore()
	real := engine.New(wl.Registry, stReal, engineConfigMQMF())
	gen1 := wl.NewGen(3)
	gen2 := wl.NewGen(3)
	seq := uint64(0)
	for b := 0; b < 5; b++ {
		var b1, b2 []engine.Request
		for i := 0; i < 30; i++ {
			seq++
			tx, in := gen1.Next()
			b1 = append(b1, engine.Request{Seq: seq, TxName: tx, Inputs: in})
			tx2, in2 := gen2.Next()
			b2 = append(b2, engine.Request{Seq: seq, TxName: tx2, Inputs: in2})
		}
		if _, err := sim.ExecuteBatch(b1); err != nil {
			t.Fatal(err)
		}
		if _, err := real.ExecuteBatch(b2); err != nil {
			t.Fatal(err)
		}
	}
	if stSim.StateHash(stSim.Epoch()) != stReal.StateHash(stReal.Epoch()) {
		t.Fatal("simulator state diverged from threaded engine state")
	}
}

package harness

import (
	"strings"
	"testing"
	"time"

	"prognosticator/internal/engine"
	"prognosticator/internal/profile"
	"prognosticator/internal/workload/rubis"
	"prognosticator/internal/workload/tpcc"
)

// Small scales keep the harness tests fast while exercising the full paths.
func tinyTPCC(warehouses int) tpcc.Config {
	return tpcc.Config{
		Warehouses: warehouses, Items: 40, CustomersPerDistrict: 10,
		OrderLinesMin: 5, OrderLinesMax: 15,
	}
}

func tinyRUBiS() rubis.Config { return rubis.Config{Users: 40, Items: 40} }

// fastOpts keeps each point around 100 ms.
func fastOpts() Options {
	return Options{
		BatchInterval: 2 * time.Millisecond,
		P99SLA:        5 * time.Millisecond,
		Batches:       10,
		Warmup:        2,
		StartSize:     4,
		MaxSize:       64,
		Growth:        2,
		Workers:       4,
		Seed:          1,
	}
}

func TestRunPointTPCC(t *testing.T) {
	wl, err := TPCCWorkload(tinyTPCC(2))
	if err != nil {
		t.Fatal(err)
	}
	sys := PrognosticatorSystem("MQ-MF", engineConfigMQMF())
	pt, err := RunPoint(sys, wl, 8, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if pt.Throughput <= 0 {
		t.Fatalf("throughput = %v", pt.Throughput)
	}
	if pt.P99 <= 0 {
		t.Fatalf("p99 = %v", pt.P99)
	}
	if pt.MeanPrepare <= 0 {
		t.Fatal("prepare time not measured")
	}
}

func TestMaxSustainableFindsAPoint(t *testing.T) {
	wl, err := TPCCWorkload(tinyTPCC(2))
	if err != nil {
		t.Fatal(err)
	}
	sw, err := MaxSustainable(SEQSystem(), wl, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) == 0 {
		t.Fatal("no points measured")
	}
	if sw.Best.Throughput <= 0 {
		t.Fatalf("best = %+v", sw.Best)
	}
	// Points ramp geometrically.
	for i := 1; i < len(sw.Points); i++ {
		if sw.Points[i].BatchSize <= sw.Points[i-1].BatchSize {
			t.Fatal("batch sizes must grow")
		}
	}
}

func TestComparisonSystemsLineup(t *testing.T) {
	systems := ComparisonSystems()
	names := make([]string, len(systems))
	for i, s := range systems {
		names[i] = s.Name
	}
	want := []string{"MQ-MF", "MQ-SF", "Calvin-100", "Calvin-200", "NODO", "SEQ"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("lineup = %v", names)
	}
}

func TestVariantSystemsGrid(t *testing.T) {
	systems := VariantSystems()
	if len(systems) != 8 {
		t.Fatalf("variants = %d, want 8", len(systems))
	}
	seen := map[string]bool{}
	for _, s := range systems {
		seen[s.Name] = true
	}
	for _, want := range []string{"MQ-SF", "MQ-SF-R", "MQ-MF", "MQ-MF-R", "1Q-SF", "1Q-SF-R", "1Q-MF", "1Q-MF-R"} {
		if !seen[want] {
			t.Fatalf("missing variant %s (have %v)", want, seen)
		}
	}
}

func TestRunComparisonSmall(t *testing.T) {
	wl, err := TPCCWorkload(tinyTPCC(1))
	if err != nil {
		t.Fatal(err)
	}
	systems := []System{
		PrognosticatorSystem("MQ-MF", engineConfigMQMF()),
		SEQSystem(),
	}
	rows, err := RunComparison(systems, []Workload{wl}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Throughput <= 0 {
			t.Fatalf("row %+v has no throughput", r)
		}
	}
	out := RenderComparison("Fig. 3 (smoke)", rows)
	if !strings.Contains(out, "MQ-MF") || !strings.Contains(out, "SEQ") {
		t.Fatalf("render missing systems:\n%s", out)
	}
	csv := ComparisonCSV(rows)
	if !strings.Contains(csv, "TPC-C/1WH,MQ-MF") {
		t.Fatalf("csv malformed:\n%s", csv)
	}
}

func TestTableIShape(t *testing.T) {
	rows, err := TableI(tinyTPCC(2), tinyRUBiS())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10 (3 newOrder + payment + delivery + 5 RUBiS)", len(rows))
	}
	byName := map[string]TableIRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Delivery: 1024 key-sets as in the paper.
	if d := byName["TPC-C: delivery"]; d.UniqueKeySets != 1024 {
		t.Fatalf("delivery key-sets = %d", d.UniqueKeySets)
	}
	// newOrder: optimized constant, unoptimized exponential in iterations.
	n5 := byName["TPC-C: new order (5 iters.)"]
	n15 := byName["TPC-C: new order (15 iters.)"]
	if n5.StatesExplored != 1 || n15.StatesExplored != 1 {
		t.Fatalf("optimized states: %d / %d, want 1/1", n5.StatesExplored, n15.StatesExplored)
	}
	if n15.TotalStates <= n5.TotalStates {
		t.Fatal("total states must grow with iterations")
	}
	if !n15.Extrapolated {
		t.Fatal("15-iteration unoptimized run must be extrapolated")
	}
	if n15.TimeUnopt <= n5.TimeUnopt {
		t.Fatal("extrapolated unoptimized time must dwarf the 5-iteration run")
	}
	// Payment: trivial profile, no pivots.
	if p := byName["TPC-C: payment"]; p.IndirectKeys != 0 || p.UniqueKeySets != 1 {
		t.Fatalf("payment row = %+v", p)
	}
	// Every RUBiS update transaction has at least one indirect key.
	for _, name := range []string{"RUBiS: store bid", "RUBiS: store buy now",
		"RUBiS: store comment", "RUBiS: register user", "RUBiS: register item"} {
		if byName[name].IndirectKeys < 1 {
			t.Fatalf("%s indirect keys = %d", name, byName[name].IndirectKeys)
		}
	}
	rendered := RenderTableI(rows)
	if !strings.Contains(rendered, "TPC-C: delivery") || !strings.Contains(rendered, "~") {
		t.Fatalf("render:\n%s", rendered)
	}
	csv := TableICSV(rows)
	if !strings.Contains(csv, "\"TPC-C: payment\"") {
		t.Fatalf("csv:\n%s", csv)
	}
}

func TestClassCountEchoesPaper(t *testing.T) {
	wl, err := TPCCWorkload(tinyTPCC(2))
	if err != nil {
		t.Fatal(err)
	}
	counts := ClassCount(wl.Registry)
	if counts[profile.ClassROT] != 2 || counts[profile.ClassDT] != 2 || counts[profile.ClassIT] != 1 {
		t.Fatalf("TPC-C classes = %v, want 2 ROT / 2 DT / 1 IT", counts)
	}
}

func TestSpeedups(t *testing.T) {
	rows := []ComparisonRow{
		{Workload: "w", System: "fast", Throughput: 500},
		{Workload: "w", System: "slow", Throughput: 100},
	}
	sp := Speedups(rows)
	if sp["w"]["fast"] != 5 || sp["w"]["slow"] != 1 {
		t.Fatalf("speedups = %v", sp)
	}
}

func TestFormatters(t *testing.T) {
	if fmtBig(2048) != "2048" || fmtBig(2.1e9) != "2.1G" || fmtBig(32768) != "33k" {
		t.Fatal("fmtBig")
	}
	if fmtBytes(512) != "512B" || fmtBytes(2<<20) != "2.0MB" {
		t.Fatal("fmtBytes")
	}
	if fmtDur(0) != "-" || fmtDur(48*time.Hour) != "2.0d" || fmtDur(1500*time.Microsecond) != "1.50ms" {
		t.Fatalf("fmtDur: %s %s %s", fmtDur(0), fmtDur(48*time.Hour), fmtDur(1500*time.Microsecond))
	}
}

func TestSortRows(t *testing.T) {
	rows := []ComparisonRow{
		{Workload: "b", System: "x"},
		{Workload: "a", System: "z"},
		{Workload: "a", System: "y"},
	}
	SortRows(rows)
	if rows[0].Workload != "a" || rows[0].System != "y" || rows[2].Workload != "b" {
		t.Fatalf("sorted = %+v", rows)
	}
}

// engineConfigMQMF is a test helper returning the default engine variant.
func engineConfigMQMF() engine.Config {
	return engine.Config{Queue: engine.QueueMulti, Fail: engine.FailReenqueue}
}

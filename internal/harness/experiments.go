package harness

import (
	"fmt"
	"time"

	"prognosticator/internal/baselines"
	"prognosticator/internal/engine"
	"prognosticator/internal/lang"
	"prognosticator/internal/profile"
	"prognosticator/internal/store"
	"prognosticator/internal/symexec"
	"prognosticator/internal/value"
	"prognosticator/internal/workload/rubis"
	"prognosticator/internal/workload/tpcc"
)

// Predefined systems of §IV-B. Calvin-100/Calvin-200 translate the paper's
// N ms reconnaissance lead into batch epochs at the 10 ms batch interval.

// PrognosticatorSystem returns the engine under a named variant config.
func PrognosticatorSystem(name string, cfg engine.Config) System {
	return System{Name: name, New: func(reg *engine.Registry, st *store.Store, workers int) engine.Executor {
		c := cfg
		c.Workers = workers
		return engine.New(reg, st, c)
	}}
}

// SimPrognosticatorSystem returns the virtual-time engine variant.
func SimPrognosticatorSystem(name string, cfg engine.Config) System {
	return System{Name: name, New: func(reg *engine.Registry, st *store.Store, workers int) engine.Executor {
		c := cfg
		c.Workers = workers
		return engine.NewSim(reg, st, c)
	}}
}

// CalvinSystem returns the Calvin baseline with the given staleness epochs.
func CalvinSystem(name string, stalenessEpochs uint64) System {
	return System{Name: name, New: func(reg *engine.Registry, st *store.Store, workers int) engine.Executor {
		return baselines.NewCalvin(reg, st, workers, stalenessEpochs, name)
	}}
}

// NODOSystem returns the NODO baseline.
func NODOSystem() System {
	return System{Name: "NODO", New: func(reg *engine.Registry, st *store.Store, workers int) engine.Executor {
		return baselines.NewNODO(reg, st, workers)
	}}
}

// SEQSystem returns the sequential baseline.
func SEQSystem() System {
	return System{Name: "SEQ", New: func(reg *engine.Registry, st *store.Store, workers int) engine.Executor {
		return baselines.NewSEQ(reg, st)
	}}
}

// ComparisonSystems returns the §IV-B line-up: MQ-MF, MQ-SF, Calvin-100,
// Calvin-200, NODO, SEQ.
func ComparisonSystems() []System {
	return []System{
		PrognosticatorSystem("MQ-MF", engine.Config{Queue: engine.QueueMulti, Fail: engine.FailReenqueue}),
		PrognosticatorSystem("MQ-SF", engine.Config{Queue: engine.QueueMulti, Fail: engine.FailSequential}),
		CalvinSystem("Calvin-100", 10),
		CalvinSystem("Calvin-200", 20),
		NODOSystem(),
		SEQSystem(),
	}
}

// SimComparisonSystems is the §IV-B line-up on virtual-time executors; use
// with Options.Virtual.
func SimComparisonSystems() []System {
	mk := func(name string, staleness uint64) System {
		return System{Name: name, New: func(reg *engine.Registry, st *store.Store, workers int) engine.Executor {
			return baselines.NewSimCalvin(reg, st, workers, staleness, name)
		}}
	}
	return []System{
		SimPrognosticatorSystem("MQ-MF", engine.Config{Queue: engine.QueueMulti, Fail: engine.FailReenqueue}),
		SimPrognosticatorSystem("MQ-SF", engine.Config{Queue: engine.QueueMulti, Fail: engine.FailSequential}),
		mk("Calvin-100", 10),
		mk("Calvin-200", 20),
		{Name: "NODO", New: func(reg *engine.Registry, st *store.Store, workers int) engine.Executor {
			return baselines.NewSimNODO(reg, st, workers)
		}},
		{Name: "SEQ", New: func(reg *engine.Registry, st *store.Store, workers int) engine.Executor {
			return baselines.NewSimSEQ(reg, st)
		}},
	}
}

// VariantSystems returns the eight §IV-C Prognosticator variants:
// {MQ,1Q} x {SF,MF} x {SE,R}.
func VariantSystems() []System {
	var out []System
	for _, q := range []engine.QueueMode{engine.QueueMulti, engine.QueueSingle} {
		for _, f := range []engine.FailMode{engine.FailSequential, engine.FailReenqueue} {
			for _, p := range []engine.PrepareMode{engine.PrepareSE, engine.PrepareRecon} {
				cfg := engine.Config{Queue: q, Fail: f, Prepare: p}
				out = append(out, PrognosticatorSystem(cfg.VariantName(), cfg))
			}
		}
	}
	return out
}

// SimVariantSystems is the variant grid on virtual-time executors.
func SimVariantSystems() []System {
	var out []System
	for _, q := range []engine.QueueMode{engine.QueueMulti, engine.QueueSingle} {
		for _, f := range []engine.FailMode{engine.FailSequential, engine.FailReenqueue} {
			for _, p := range []engine.PrepareMode{engine.PrepareSE, engine.PrepareRecon} {
				cfg := engine.Config{Queue: q, Fail: f, Prepare: p}
				out = append(out, SimPrognosticatorSystem(cfg.VariantName(), cfg))
			}
		}
	}
	return out
}

// TPCCWorkload builds the TPC-C workload at the given warehouse count (the
// paper's contention knob: 100 low, 10 medium, 1 high).
func TPCCWorkload(cfg tpcc.Config) (Workload, error) {
	reg, err := engine.NewRegistry(tpcc.Schema(), tpcc.Programs(cfg)...)
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		Name:     fmt.Sprintf("TPC-C/%dWH", cfg.Warehouses),
		Registry: reg,
		NewStore: func() *store.Store {
			st := store.New()
			tpcc.Populate(st, cfg)
			return st
		},
		NewGen: func(seed int64) RequestGen { return tpcc.NewGenerator(cfg, seed) },
	}, nil
}

// RUBiSWorkload builds the RUBiS-C workload.
func RUBiSWorkload(cfg rubis.Config) (Workload, error) {
	reg, err := engine.NewRegistry(rubis.Schema(), rubis.Programs(cfg)...)
	if err != nil {
		return Workload{}, err
	}
	return Workload{
		Name:     "RUBiS-C",
		Registry: reg,
		NewStore: func() *store.Store {
			st := store.New()
			rubis.Populate(st, cfg)
			return st
		},
		NewGen: func(seed int64) RequestGen { return rubis.NewGenerator(cfg, seed) },
	}, nil
}

// ComparisonRow is one bar of Fig. 3 / Fig. 4.
type ComparisonRow struct {
	Workload   string
	System     string
	Throughput float64
	AbortPct   float64
	BatchSize  int
	P99        time.Duration
}

// RunComparison sweeps every system over every workload (Fig. 3 = TPC-C at
// three contention levels; Fig. 4 = RUBiS-C).
func RunComparison(systems []System, workloads []Workload, opts Options) ([]ComparisonRow, error) {
	var rows []ComparisonRow
	for _, wl := range workloads {
		for _, sys := range systems {
			sw, err := MaxSustainable(sys, wl, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, ComparisonRow{
				Workload: wl.Name, System: sys.Name,
				Throughput: sw.Best.Throughput, AbortPct: sw.Best.AbortPct,
				BatchSize: sw.Best.BatchSize, P99: sw.Best.P99,
			})
		}
	}
	return rows, nil
}

// VariantRow is one bar of Fig. 5 (throughput plus time breakdown).
type VariantRow struct {
	Workload    string
	Variant     string
	Throughput  float64
	MeanPrepare time.Duration
	MeanReexec  time.Duration
	AbortPct    float64
}

// RunVariants sweeps the eight Prognosticator variants (Fig. 5).
func RunVariants(workloads []Workload, opts Options) ([]VariantRow, error) {
	systems := VariantSystems()
	if opts.Virtual {
		systems = SimVariantSystems()
	}
	var rows []VariantRow
	for _, wl := range workloads {
		for _, sys := range systems {
			sw, err := MaxSustainable(sys, wl, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, VariantRow{
				Workload: wl.Name, Variant: sys.Name,
				Throughput:  sw.Best.Throughput,
				MeanPrepare: sw.Best.MeanPrepare,
				MeanReexec:  sw.Best.MeanReexec,
				AbortPct:    sw.Best.AbortPct,
			})
		}
	}
	return rows, nil
}

// TableIRow is one row of the paper's Table I: the cost of the SE analysis
// of an update transaction, with and without the optimizations.
type TableIRow struct {
	Name           string
	StatesExplored int
	TotalStates    float64
	Depth          int
	DepthMax       int
	UniqueKeySets  int
	IndirectKeys   int
	MemOpt         uint64
	MemUnopt       uint64
	TimeOpt        time.Duration
	TimeUnopt      time.Duration
	// Extrapolated marks unoptimized columns scaled from a truncated run
	// (the paper's "~35 days" case).
	Extrapolated bool
}

// analyzeRow runs the optimized + unoptimized analysis of one program.
func analyzeRow(name string, prog *lang.Program, fixed map[string]value.Value) (TableIRow, error) {
	prof, err := symexec.Analyze(prog, symexec.Options{
		UseTaint: true, Prune: true, FixedInputs: fixed,
	})
	if err != nil {
		return TableIRow{}, fmt.Errorf("harness: table I %s: %w", name, err)
	}
	row := TableIRow{
		Name:           name,
		StatesExplored: prof.Stats.StatesExplored,
		TotalStates:    prof.Stats.TotalStates,
		Depth:          prof.Stats.Depth,
		DepthMax:       prof.Stats.DepthMax,
		UniqueKeySets:  prof.Stats.UniqueKeySets,
		IndirectKeys:   prof.Stats.IndirectKeys,
		MemOpt:         prof.Stats.MemoryBytes,
		MemUnopt:       prof.Stats.MemoryBytesUnopt,
		TimeOpt:        prof.Stats.Duration,
		TimeUnopt:      prof.Stats.DurationUnopt,
	}
	if prof.Stats.UnoptTruncated && prof.Stats.StatesUnopt > 0 {
		// Extrapolate the full unoptimized cost from the truncated run's
		// per-state cost, exactly how the paper reports infeasible runs.
		perState := float64(prof.Stats.DurationUnopt) / float64(prof.Stats.StatesUnopt)
		row.TimeUnopt = clampDuration(perState * prof.Stats.TotalStates)
		perStateMem := float64(prof.Stats.MemoryBytesUnopt) / float64(prof.Stats.StatesUnopt)
		row.MemUnopt = clampBytes(perStateMem * prof.Stats.TotalStates)
		row.Extrapolated = true
	}
	return row, nil
}

// clampDuration converts extrapolated nanoseconds to a Duration, saturating
// instead of overflowing (newOrder's 2^46-state extrapolation exceeds
// int64 nanoseconds; the paper's analogue is its "~35 days" estimate).
func clampDuration(ns float64) time.Duration {
	const maxDur = float64(1<<63 - 1)
	if ns >= maxDur {
		return time.Duration(1<<63 - 1)
	}
	return time.Duration(ns)
}

func clampBytes(b float64) uint64 {
	const maxBytes = float64(^uint64(0))
	if b >= maxBytes {
		return ^uint64(0)
	}
	return uint64(b)
}

// TableI reproduces the paper's Table I: SE analysis of every update
// transaction in TPC-C (newOrder at 5/10/15 iterations, payment, delivery)
// and RUBiS.
func TableI(tcfg tpcc.Config, rcfg rubis.Config) ([]TableIRow, error) {
	var rows []TableIRow
	for _, iters := range []int64{5, 10, 15} {
		row, err := analyzeRow(fmt.Sprintf("TPC-C: new order (%d iters.)", iters),
			tpcc.NewOrderProg(tcfg), map[string]value.Value{"olCnt": value.Int(iters)})
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	row, err := analyzeRow("TPC-C: payment", tpcc.PaymentProg(tcfg), nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	row, err = analyzeRow("TPC-C: delivery", tpcc.DeliveryProg(tcfg), nil)
	if err != nil {
		return nil, err
	}
	rows = append(rows, row)
	for _, prog := range rubis.UpdatePrograms(rcfg) {
		label := map[string]string{
			"storeBid":     "RUBiS: store bid",
			"storeBuyNow":  "RUBiS: store buy now",
			"storeComment": "RUBiS: store comment",
			"registerUser": "RUBiS: register user",
			"registerItem": "RUBiS: register item",
		}[prog.Name]
		row, err := analyzeRow(label, prog, nil)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ClassCount summarises a registry's transaction classes; used by the docs
// and the profiler to echo the paper's "two ROT, two DT and one IT".
func ClassCount(reg *engine.Registry) map[profile.Class]int {
	out := map[profile.Class]int{}
	for _, p := range reg.Profiles {
		out[p.Class()]++
	}
	return out
}

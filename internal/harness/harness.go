// Package harness drives the paper's evaluation methodology (§IV): batches
// arrive at a fixed interval (10 ms in the paper); the transactions-per-
// batch knob is ramped up until the 99th-percentile latency exceeds the SLA
// (10 ms); the largest passing point is the system's maximum sustainable
// throughput. The harness also computes the paper's normalized abort rate
// and the per-transaction prepare / re-execution time breakdown of Fig. 5b.
package harness

import (
	"fmt"
	"time"

	"prognosticator/internal/engine"
	"prognosticator/internal/metrics"
	"prognosticator/internal/store"
	"prognosticator/internal/value"
)

// RequestGen produces workload requests.
type RequestGen interface {
	Next() (txName string, inputs map[string]value.Value)
}

// Workload bundles everything needed to run one benchmark configuration.
type Workload struct {
	Name     string
	Registry *engine.Registry
	// NewStore returns a freshly populated store.
	NewStore func() *store.Store
	// NewGen returns a deterministic request generator.
	NewGen func(seed int64) RequestGen
}

// System names an executor construction.
type System struct {
	Name string
	New  func(reg *engine.Registry, st *store.Store, workers int) engine.Executor
}

// Options tunes a sweep. The defaults reproduce the paper's methodology at
// laptop scale.
type Options struct {
	BatchInterval time.Duration // paper: 10 ms
	P99SLA        time.Duration // paper: 10 ms
	Batches       int           // measured batches per point
	Warmup        int           // discarded leading batches per point
	StartSize     int           // first batch size tried
	MaxSize       int           // give up above this size
	Growth        float64       // batch-size multiplier between points
	Workers       int           // paper: 20 threads
	Seed          int64
	// Virtual selects virtual-time accounting: executors must be the Sim*
	// variants (engine.NewSim, baselines.NewSim*), which schedule real
	// executions across N virtual workers and report VDone /
	// VirtualMakespan. This reproduces the paper's 20-core testbed on any
	// host (see internal/engine/sim.go) and runs without wall-clock pacing.
	Virtual bool
}

func (o Options) withDefaults() Options {
	if o.BatchInterval == 0 {
		o.BatchInterval = 10 * time.Millisecond
	}
	if o.P99SLA == 0 {
		o.P99SLA = 10 * time.Millisecond
	}
	if o.Batches == 0 {
		o.Batches = 30
	}
	if o.Warmup == 0 {
		o.Warmup = 5
	}
	if o.StartSize == 0 {
		o.StartSize = 8
	}
	if o.MaxSize == 0 {
		o.MaxSize = 1 << 14
	}
	if o.Growth == 0 {
		o.Growth = 1.5
	}
	if o.Workers == 0 {
		o.Workers = 4
	}
	return o
}

// Point is the measurement at one batch size.
type Point struct {
	BatchSize  int
	Throughput float64 // committed transactions per second
	P99        time.Duration
	Mean       time.Duration
	// AbortPct is the paper's normalized abort rate: failed executions per
	// processed transaction, in percent.
	AbortPct float64
	// Breakdown for Fig. 5b.
	MeanPrepare time.Duration
	MeanReexec  time.Duration // mean total execution time of transactions that aborted at least once
	Pass        bool
}

// Sweep is the result of a max-sustainable-throughput search.
type Sweep struct {
	System   string
	Workload string
	Points   []Point
	// Best is the highest-throughput passing point (zero value if none
	// passed).
	Best Point
}

// MaxSustainable ramps the batch size and returns the sweep. A single
// failing point does not end the search (one GC pause can spoil a point's
// p99 on a busy host); the ramp stops after maxConsecutiveFails failures in
// a row, and the best passing point wins.
func MaxSustainable(sys System, wl Workload, opts Options) (*Sweep, error) {
	opts = opts.withDefaults()
	sw := &Sweep{System: sys.Name, Workload: wl.Name}
	size := opts.StartSize
	fails := 0
	for size <= opts.MaxSize && fails < maxConsecutiveFails {
		pt, err := RunPoint(sys, wl, size, opts)
		if err != nil {
			return nil, err
		}
		sw.Points = append(sw.Points, *pt)
		if pt.Pass {
			fails = 0
			if pt.Throughput > sw.Best.Throughput {
				sw.Best = *pt
			}
		} else {
			fails++
		}
		next := int(float64(size) * opts.Growth)
		if next == size {
			next = size + 1
		}
		size = next
	}
	return sw, nil
}

// maxConsecutiveFails ends the batch-size ramp.
const maxConsecutiveFails = 2

// RunPoint measures one (system, workload, batch size) configuration: it
// dispatches Batches+Warmup batches paced at BatchInterval and reports
// latency, throughput, abort rate and time breakdowns over the measured
// window.
func RunPoint(sys System, wl Workload, batchSize int, opts Options) (*Point, error) {
	opts = opts.withDefaults()
	st := wl.NewStore()
	exec := sys.New(wl.Registry, st, opts.Workers)
	gen := wl.NewGen(opts.Seed)

	lat := metrics.NewHistogram()
	var committed, processed, aborts int
	var prepSum, reexecSum time.Duration
	var prepN, reexecN int

	arrivals := map[uint64]time.Time{}
	arrivalsV := map[uint64]time.Duration{}
	seq := uint64(0)
	start := time.Now()
	var vclock time.Duration
	total := opts.Warmup + opts.Batches
	for b := 0; b < total; b++ {
		vArrival := time.Duration(b) * opts.BatchInterval
		var batchStartV time.Duration
		if opts.Virtual {
			// Virtual pacing: the batch starts when it arrives or when
			// the previous batch's makespan ends, whichever is later.
			if vclock < vArrival {
				vclock = vArrival
			}
			batchStartV = vclock
		} else {
			target := start.Add(vArrival)
			if d := time.Until(target); d > 0 {
				time.Sleep(d)
			}
		}
		batch := make([]engine.Request, batchSize)
		now := time.Now()
		for i := range batch {
			seq++
			tx, inputs := gen.Next()
			batch[i] = engine.Request{Seq: seq, TxName: tx, Inputs: inputs}
			arrivals[seq] = now
			arrivalsV[seq] = vArrival
		}
		res, err := exec.ExecuteBatch(batch)
		if err != nil {
			return nil, fmt.Errorf("harness: %s/%s size %d: %w", sys.Name, wl.Name, batchSize, err)
		}
		if opts.Virtual {
			vclock = batchStartV + res.VirtualMakespan
		}
		measured := b >= opts.Warmup
		for i := range res.Outcomes {
			o := &res.Outcomes[i]
			if o.Pending {
				// Carried over (Calvin): the aborted attempts count now,
				// and the client re-submits the transaction with the NEXT
				// batch, so its latency clock restarts there — the tx left
				// the system and re-enters (Calvin's client-retry path).
				if measured {
					processed++
					aborts += o.Aborts
				}
				arrivals[o.Seq] = time.Now().Add(opts.BatchInterval)
				arrivalsV[o.Seq] = vArrival + opts.BatchInterval
				continue
			}
			arr, ok := arrivals[o.Seq]
			if !ok {
				continue
			}
			arrV := arrivalsV[o.Seq]
			delete(arrivals, o.Seq)
			delete(arrivalsV, o.Seq)
			if !measured {
				continue
			}
			processed++
			committed++
			if opts.Virtual {
				lat.Observe(batchStartV + o.VDone - arrV)
			} else {
				lat.Observe(o.Done.Sub(arr))
			}
			aborts += o.Aborts
			if o.Prepare > 0 {
				prepSum += o.Prepare
				prepN++
			}
			if o.Aborts > 0 {
				reexecSum += o.Exec
				reexecN++
			}
		}
	}
	elapsed := time.Duration(opts.Batches) * opts.BatchInterval
	pt := &Point{
		BatchSize:  batchSize,
		Throughput: float64(committed) / elapsed.Seconds(),
		P99:        lat.Percentile(99),
		Mean:       lat.Mean(),
	}
	if processed > 0 {
		pt.AbortPct = 100 * float64(aborts) / float64(processed)
	}
	if prepN > 0 {
		pt.MeanPrepare = prepSum / time.Duration(prepN)
	}
	if reexecN > 0 {
		pt.MeanReexec = reexecSum / time.Duration(reexecN)
	}
	pt.Pass = pt.P99 <= opts.P99SLA && committed > 0
	return pt, nil
}

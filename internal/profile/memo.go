package profile

import (
	"container/list"
	"encoding/json"
	"sync"

	"prognosticator/internal/metrics"
	"prognosticator/internal/value"
)

// DirectMemo caches the results of InstantiateDirect per (transaction,
// inputs). The direct part of a pivot-free DT's key-set is a pure function
// of the inputs — no store state is read — so a cached key-set is valid
// forever and can be shared: benchmark workloads draw inputs from small
// domains (hot items, a fixed warehouse set), making repeats common, and the
// same entry serves both the dispatcher's client-side prediction at submit
// time and the engine's preparation phase.
//
// The cache is a bounded LRU. Cached key-sets are shared read-only; callers
// must not mutate them (the engine's Merge copies into fresh slices).
// Instantiation errors are never cached.
type DirectMemo struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	counters *metrics.CounterSet
}

type memoEntry struct {
	key string
	ks  *KeySet
}

// NewDirectMemo returns a memo holding at most capacity entries (minimum 1).
// counters, when non-nil, receives "direct_memo_hit", "direct_memo_miss" and
// "direct_memo_evict" increments.
func NewDirectMemo(capacity int, counters *metrics.CounterSet) *DirectMemo {
	if capacity < 1 {
		capacity = 1
	}
	return &DirectMemo{
		capacity: capacity,
		entries:  map[string]*list.Element{},
		order:    list.New(),
		counters: counters,
	}
}

// Len returns the number of cached entries.
func (m *DirectMemo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

func (m *DirectMemo) count(name string) {
	if m.counters != nil {
		m.counters.Add(name, 1)
	}
}

// memoKey canonicalizes (txName, inputs) into a cache key. Go's JSON encoder
// writes map keys in sorted order, so structurally equal input maps always
// produce the same key.
func memoKey(txName string, inputs map[string]value.Value) (string, bool) {
	b, err := json.Marshal(inputs)
	if err != nil {
		return "", false
	}
	return txName + "\x00" + string(b), true
}

// InstantiateDirect returns p.InstantiateDirect(inputs), serving repeats
// from the cache. The returned key-set is shared: treat it as immutable.
func (m *DirectMemo) InstantiateDirect(p *Profile, inputs map[string]value.Value) (*KeySet, error) {
	key, ok := memoKey(p.TxName, inputs)
	if !ok {
		return p.InstantiateDirect(inputs)
	}
	m.mu.Lock()
	if el, hit := m.entries[key]; hit {
		m.order.MoveToFront(el)
		ks := el.Value.(*memoEntry).ks
		m.mu.Unlock()
		m.count("direct_memo_hit")
		return ks, nil
	}
	m.mu.Unlock()
	ks, err := p.InstantiateDirect(inputs)
	m.count("direct_memo_miss")
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	if _, dup := m.entries[key]; !dup {
		m.entries[key] = m.order.PushFront(&memoEntry{key: key, ks: ks})
		if m.order.Len() > m.capacity {
			last := m.order.Back()
			m.order.Remove(last)
			delete(m.entries, last.Value.(*memoEntry).key)
			m.count("direct_memo_evict")
		}
	}
	m.mu.Unlock()
	return ks, nil
}

// Package profile defines transaction profiles — the artifact the symbolic-
// execution analysis produces offline and the deterministic scheduler
// consumes at run time (§III-B of the paper).
//
// A profile is a binary tree. Each node carries the accesses (reads/writes
// with symbolic key expressions) collected between the enclosing path
// condition and the next conditional statement, plus that conditional's
// symbolic condition; leaves carry only accesses. A root-to-leaf path is one
// <PSC, RWS> pair: the conjunction of branch conditions along the path is
// the path-set condition, and the union of access segments is the
// read/write-set. Instantiating the profile with concrete inputs — and,
// for dependent transactions, with pivot values read from the store —
// yields the concrete key-set used to populate the lock table.
package profile

import (
	"fmt"
	"time"

	"prognosticator/internal/sym"
	"prognosticator/internal/value"
)

// Class is the paper's transaction taxonomy (§III-C).
type Class int

// Transaction classes: read-only (ROT), independent (IT: key-set depends
// only on inputs) and dependent (DT: key-set depends on store state).
const (
	ClassROT Class = iota + 1
	ClassIT
	ClassDT
)

// String returns the class abbreviation used in the paper.
func (c Class) String() string {
	switch c {
	case ClassROT:
		return "ROT"
	case ClassIT:
		return "IT"
	case ClassDT:
		return "DT"
	default:
		return "?"
	}
}

// Access is one read or write with a symbolic key.
type Access struct {
	Table string
	Key   []sym.Term
	Write bool
	// Direct marks keys proven derivable from the transaction inputs alone
	// (no pivot variable in any part). The symbolic executor sets it when
	// emitting the access and cross-checks it against the static
	// key-determinism analysis; the engine instantiates direct accesses of
	// pivot-free-traversal profiles without store reads.
	Direct bool
}

// Indirect reports whether the key identity depends on a pivot value.
func (a Access) Indirect() bool {
	for _, k := range a.Key {
		if sym.HasPivot(k) {
			return true
		}
	}
	return false
}

// String renders the access for debugging.
func (a Access) String() string {
	op := "R"
	if a.Write {
		op = "W"
	}
	s := op + " " + a.Table
	for _, k := range a.Key {
		s += "/" + k.String()
	}
	return s
}

// Node is one profile-tree node. Cond == nil marks a leaf.
type Node struct {
	Seg         []Access
	Cond        sym.Term
	True, False *Node
}

// Stats records the cost of the symbolic-execution analysis that produced a
// profile; these are the columns of the paper's Table I.
type Stats struct {
	StatesExplored int
	// TotalStates is the number of states a non-concolic, non-pruning
	// exploration would visit (2^maxDepth); reported analytically when
	// actually exploring it is infeasible, as the paper does for newOrder.
	TotalStates float64
	// Depth is the maximum number of conditional statements observed on a
	// path with optimizations on; DepthMax without them.
	Depth, DepthMax int
	UniqueKeySets   int
	IndirectKeys    int
	MemoryBytes     uint64
	Duration        time.Duration
	// Truncated marks an analysis stopped early by the state budget; the
	// profile is then incomplete (measurement use only).
	Truncated bool
	// Unoptimized analysis cost (taint + pruning disabled); zero when the
	// unoptimized run was skipped. UnoptTruncated marks the unoptimized
	// comparison run as budget-truncated, in which case callers report
	// extrapolated cost, as the paper does for its infeasible runs.
	MemoryBytesUnopt uint64
	DurationUnopt    time.Duration
	StatesUnopt      int
	UnoptTruncated   bool
}

// Profile is the complete offline analysis result for one transaction type.
type Profile struct {
	TxName string
	Root   *Node
	Stats  Stats
}

// Class classifies the transaction: ROT if no path writes; IT if all key
// expressions and all conditions are direct (input-only); DT otherwise.
func (p *Profile) Class() Class {
	w := &walker{}
	w.walk(p.Root)
	switch {
	case !w.writes:
		return ClassROT
	case w.indirect:
		return ClassDT
	default:
		return ClassIT
	}
}

// PivotFreeTraversal reports whether the tree can be traversed using inputs
// alone (no condition depends on a pivot). Such DT profiles allow clients to
// predict the direct part of the key-set without touching the store —
// the optimization sketched at the end of §III-C.
func (p *Profile) PivotFreeTraversal() bool {
	w := &walker{}
	w.walk(p.Root)
	return !w.condPivot
}

// NumLeaves returns the number of <PSC, RWS> pairs in the profile.
func (p *Profile) NumLeaves() int { return countLeaves(p.Root) }

// DirectAccesses counts the accesses across all tree nodes that are marked
// Direct, along with the total. The ratio is what prognolint reports when a
// DT's direct key-set is provable client-side.
func (p *Profile) DirectAccesses() (direct, total int) {
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		for _, a := range n.Seg {
			total++
			if a.Direct {
				direct++
			}
		}
		walk(n.True)
		walk(n.False)
	}
	walk(p.Root)
	return direct, total
}

func countLeaves(n *Node) int {
	if n == nil {
		return 0
	}
	if n.Cond == nil {
		return 1
	}
	return countLeaves(n.True) + countLeaves(n.False)
}

type walker struct {
	writes    bool
	indirect  bool
	condPivot bool
}

func (w *walker) walk(n *Node) {
	if n == nil {
		return
	}
	for _, a := range n.Seg {
		if a.Write {
			w.writes = true
		}
		if a.Indirect() {
			w.indirect = true
		}
	}
	if n.Cond != nil {
		if sym.HasPivot(n.Cond) {
			w.indirect = true
			w.condPivot = true
		}
		w.walk(n.True)
		w.walk(n.False)
	}
}

// PivotReader supplies pivot values during key-set preparation. Implemented
// by store read views. found is false when the item does not exist.
type PivotReader interface {
	ReadPivot(k value.Key, field string) (v value.Value, found bool)
}

// PivotObservation records one pivot read made while preparing a key-set.
// At execution time the engine re-reads the pivot and aborts the transaction
// if the value changed (§III-C).
type PivotObservation struct {
	Key   value.Key
	Field string
	Value value.Value
}

// KeySet is the concrete result of instantiating a profile.
type KeySet struct {
	Reads  []value.Key
	Writes []value.Key
	// Pivots lists the pivot observations made during preparation, in
	// deterministic (first-use) order.
	Pivots []PivotObservation
}

// Keys returns the union of reads and writes, deduplicated, in
// deterministic order (reads first).
func (ks *KeySet) Keys() []value.Key {
	seen := make(map[value.Encoded]bool, len(ks.Reads)+len(ks.Writes))
	out := make([]value.Key, 0, len(ks.Reads)+len(ks.Writes))
	for _, k := range append(append([]value.Key{}, ks.Reads...), ks.Writes...) {
		if e := k.Encode(); !seen[e] {
			seen[e] = true
			out = append(out, k)
		}
	}
	return out
}

// Instantiate traverses the profile with concrete inputs, resolving pivot
// variables through pr, and returns the concrete key-set of this invocation.
// For IT/ROT profiles pr may be nil. Missing pivot items read as integer
// zero fields, matching the concrete interpreter's semantics for absent
// records.
func (p *Profile) Instantiate(inputs map[string]value.Value, pr PivotReader) (*KeySet, error) {
	return p.instantiate(inputs, pr, nil)
}

// InstantiateDirect traverses the profile with inputs alone and returns the
// key-set of the accesses marked Direct — the part a client can predict
// without touching the store (§III-C). It requires a pivot-free traversal:
// a pivot in any path condition is an error, never a silent store read.
func (p *Profile) InstantiateDirect(inputs map[string]value.Value) (*KeySet, error) {
	if !p.PivotFreeTraversal() {
		return nil, fmt.Errorf("profile %s: InstantiateDirect on a profile with pivot-dependent conditions", p.TxName)
	}
	return p.instantiate(inputs, nil, func(a Access) bool { return a.Direct })
}

// InstantiateIndirect is the complement of InstantiateDirect: it traverses
// the same root-to-leaf path and returns only the accesses NOT marked
// Direct, with the pivot observations their keys required. Merging its
// key-set with InstantiateDirect's reproduces Instantiate exactly: direct
// accesses never read pivots, so the observation sequence is unchanged.
func (p *Profile) InstantiateIndirect(inputs map[string]value.Value, pr PivotReader) (*KeySet, error) {
	return p.instantiate(inputs, pr, func(a Access) bool { return !a.Direct })
}

// instantiate walks the root-to-leaf path selected by the inputs (and, for
// pivot-dependent conditions, by pivot reads), collecting the accesses for
// which include returns true (nil means all).
func (p *Profile) instantiate(inputs map[string]value.Value, pr PivotReader, include func(Access) bool) (*KeySet, error) {
	inst := &instantiator{inputs: inputs, pr: pr, pivotCache: map[string]value.Value{}}
	ks := &KeySet{}
	n := p.Root
	for n != nil {
		for _, a := range n.Seg {
			if include != nil && !include(a) {
				continue
			}
			k, err := inst.key(a)
			if err != nil {
				return nil, fmt.Errorf("profile %s: %w", p.TxName, err)
			}
			if a.Write {
				ks.Writes = append(ks.Writes, k)
			} else {
				ks.Reads = append(ks.Reads, k)
			}
		}
		if n.Cond == nil {
			break
		}
		cv, err := inst.eval(n.Cond)
		if err != nil {
			return nil, fmt.Errorf("profile %s: condition %s: %w", p.TxName, n.Cond, err)
		}
		b, ok := cv.AsBool()
		if !ok {
			return nil, fmt.Errorf("profile %s: condition %s evaluated to %s", p.TxName, n.Cond, cv.Kind())
		}
		if b {
			n = n.True
		} else {
			n = n.False
		}
	}
	ks.Pivots = inst.observations
	return ks, nil
}

// Merge combines the direct and indirect halves of a split preparation into
// one key-set equivalent to a full Instantiate (as sets of keys; the
// interleaving of direct and indirect accesses within Reads/Writes is not
// preserved). Pivot observations come from the indirect half alone.
func Merge(direct, indirect *KeySet) *KeySet {
	return &KeySet{
		Reads:  append(append([]value.Key{}, direct.Reads...), indirect.Reads...),
		Writes: append(append([]value.Key{}, direct.Writes...), indirect.Writes...),
		Pivots: indirect.Pivots,
	}
}

type instantiator struct {
	inputs       map[string]value.Value
	pr           PivotReader
	pivotCache   map[string]value.Value
	observations []PivotObservation
}

func (in *instantiator) key(a Access) (value.Key, error) {
	parts := make([]value.Value, len(a.Key))
	for i, kt := range a.Key {
		v, err := in.eval(kt)
		if err != nil {
			return value.Key{}, err
		}
		parts[i] = v
	}
	return value.NewKey(a.Table, parts...), nil
}

func (in *instantiator) eval(t sym.Term) (value.Value, error) {
	return sym.Eval(t, in.lookup)
}

// lookup resolves input variables from the concrete inputs and pivot
// variables through the PivotReader, caching and recording each pivot read.
func (in *instantiator) lookup(v *sym.Var) (value.Value, bool) {
	if v.Pivot != nil {
		if cached, ok := in.pivotCache[v.Name]; ok {
			return cached, true
		}
		if in.pr == nil {
			return value.Value{}, false
		}
		parts := make([]value.Value, len(v.Pivot.Key))
		for i, kt := range v.Pivot.Key {
			pv, err := sym.Eval(kt, in.lookup)
			if err != nil {
				return value.Value{}, false
			}
			parts[i] = pv
		}
		k := value.NewKey(v.Pivot.Table, parts...)
		pv, found := in.pr.ReadPivot(k, v.Pivot.Field)
		if !found {
			pv = value.Int(0)
		}
		in.pivotCache[v.Name] = pv
		in.observations = append(in.observations, PivotObservation{Key: k, Field: v.Pivot.Field, Value: pv})
		return pv, true
	}
	if v.List != "" {
		lst, ok := in.inputs[v.List]
		if !ok {
			return value.Value{}, false
		}
		return lst.Index(v.Idx)
	}
	val, ok := in.inputs[v.Name]
	return val, ok
}

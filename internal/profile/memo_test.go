package profile

import (
	"testing"

	"prognosticator/internal/metrics"
	"prognosticator/internal/sym"
	"prognosticator/internal/value"
)

// memoProfile is a minimal pivot-free profile: one direct access keyed by
// the input u.
func memoProfile() *Profile {
	return &Profile{
		TxName: "memoTx",
		Root: &Node{Seg: []Access{
			{Table: "T", Key: []sym.Term{sym.NewInput("u", value.KindInt, 0, 99)}, Direct: true},
		}},
	}
}

func memoInputs(u int64) map[string]value.Value {
	return map[string]value.Value{"u": value.Int(u)}
}

func TestDirectMemoHitMiss(t *testing.T) {
	counters := metrics.NewCounterSet()
	m := NewDirectMemo(8, counters)
	p := memoProfile()

	ks1, err := m.InstantiateDirect(p, memoInputs(3))
	if err != nil {
		t.Fatal(err)
	}
	if h, mi := counters.Value("direct_memo_hit"), counters.Value("direct_memo_miss"); h != 0 || mi != 1 {
		t.Fatalf("after first call: hit=%d miss=%d, want 0/1", h, mi)
	}
	// A structurally equal but distinct inputs map must hit the same entry
	// and return the shared key-set.
	ks2, err := m.InstantiateDirect(p, memoInputs(3))
	if err != nil {
		t.Fatal(err)
	}
	if ks2 != ks1 {
		t.Error("repeat inputs did not return the cached key-set")
	}
	if h, mi := counters.Value("direct_memo_hit"), counters.Value("direct_memo_miss"); h != 1 || mi != 1 {
		t.Fatalf("after repeat: hit=%d miss=%d, want 1/1", h, mi)
	}
	// Different inputs are a different entry with a different key-set.
	ks3, err := m.InstantiateDirect(p, memoInputs(4))
	if err != nil {
		t.Fatal(err)
	}
	if ks3 == ks1 {
		t.Error("distinct inputs returned the same cached key-set")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	// The cached result must match a direct instantiation.
	want, err := p.InstantiateDirect(memoInputs(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(ks1.Reads) != len(want.Reads) || ks1.Reads[0].Encode() != want.Reads[0].Encode() {
		t.Fatalf("cached key-set %v differs from fresh instantiation %v", ks1.Reads, want.Reads)
	}
}

func TestDirectMemoEviction(t *testing.T) {
	counters := metrics.NewCounterSet()
	m := NewDirectMemo(2, counters)
	p := memoProfile()
	for u := int64(0); u < 3; u++ {
		if _, err := m.InstantiateDirect(p, memoInputs(u)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d after overflow, want 2", m.Len())
	}
	if ev := counters.Value("direct_memo_evict"); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	// u=0 was least recently used and must have been evicted; u=2 is cached.
	if _, err := m.InstantiateDirect(p, memoInputs(2)); err != nil {
		t.Fatal(err)
	}
	if h := counters.Value("direct_memo_hit"); h != 1 {
		t.Fatalf("hit on retained entry: hits = %d, want 1", h)
	}
	if _, err := m.InstantiateDirect(p, memoInputs(0)); err != nil {
		t.Fatal(err)
	}
	if mi := counters.Value("direct_memo_miss"); mi != 4 {
		t.Fatalf("evicted entry should miss: misses = %d, want 4", mi)
	}
}

func TestDirectMemoErrorNotCached(t *testing.T) {
	m := NewDirectMemo(8, nil)
	// A profile with a pivot-dependent condition rejects InstantiateDirect.
	bad := &Profile{
		TxName: "badTx",
		Root: &Node{
			Cond: sym.NewPivot("T", []sym.Term{sym.Const{V: value.Int(1)}}, "f"),
			True: &Node{}, False: &Node{},
		},
	}
	if _, err := m.InstantiateDirect(bad, memoInputs(1)); err == nil {
		t.Fatal("expected error from pivot-dependent traversal")
	}
	if m.Len() != 0 {
		t.Fatalf("error was cached: Len = %d", m.Len())
	}
}

package profile

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"prognosticator/internal/metrics"
	"prognosticator/internal/sym"
	"prognosticator/internal/value"
)

// memoProfile is a minimal pivot-free profile: one direct access keyed by
// the input u.
func memoProfile() *Profile {
	return &Profile{
		TxName: "memoTx",
		Root: &Node{Seg: []Access{
			{Table: "T", Key: []sym.Term{sym.NewInput("u", value.KindInt, 0, 99)}, Direct: true},
		}},
	}
}

func memoInputs(u int64) map[string]value.Value {
	return map[string]value.Value{"u": value.Int(u)}
}

func TestDirectMemoHitMiss(t *testing.T) {
	counters := metrics.NewCounterSet()
	m := NewDirectMemo(8, counters)
	p := memoProfile()

	ks1, err := m.InstantiateDirect(p, memoInputs(3))
	if err != nil {
		t.Fatal(err)
	}
	if h, mi := counters.Value("direct_memo_hit"), counters.Value("direct_memo_miss"); h != 0 || mi != 1 {
		t.Fatalf("after first call: hit=%d miss=%d, want 0/1", h, mi)
	}
	// A structurally equal but distinct inputs map must hit the same entry
	// and return the shared key-set.
	ks2, err := m.InstantiateDirect(p, memoInputs(3))
	if err != nil {
		t.Fatal(err)
	}
	if ks2 != ks1 {
		t.Error("repeat inputs did not return the cached key-set")
	}
	if h, mi := counters.Value("direct_memo_hit"), counters.Value("direct_memo_miss"); h != 1 || mi != 1 {
		t.Fatalf("after repeat: hit=%d miss=%d, want 1/1", h, mi)
	}
	// Different inputs are a different entry with a different key-set.
	ks3, err := m.InstantiateDirect(p, memoInputs(4))
	if err != nil {
		t.Fatal(err)
	}
	if ks3 == ks1 {
		t.Error("distinct inputs returned the same cached key-set")
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	// The cached result must match a direct instantiation.
	want, err := p.InstantiateDirect(memoInputs(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(ks1.Reads) != len(want.Reads) || ks1.Reads[0].Encode() != want.Reads[0].Encode() {
		t.Fatalf("cached key-set %v differs from fresh instantiation %v", ks1.Reads, want.Reads)
	}
}

func TestDirectMemoEviction(t *testing.T) {
	counters := metrics.NewCounterSet()
	m := NewDirectMemo(2, counters)
	p := memoProfile()
	for u := int64(0); u < 3; u++ {
		if _, err := m.InstantiateDirect(p, memoInputs(u)); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d after overflow, want 2", m.Len())
	}
	if ev := counters.Value("direct_memo_evict"); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	// u=0 was least recently used and must have been evicted; u=2 is cached.
	if _, err := m.InstantiateDirect(p, memoInputs(2)); err != nil {
		t.Fatal(err)
	}
	if h := counters.Value("direct_memo_hit"); h != 1 {
		t.Fatalf("hit on retained entry: hits = %d, want 1", h)
	}
	if _, err := m.InstantiateDirect(p, memoInputs(0)); err != nil {
		t.Fatal(err)
	}
	if mi := counters.Value("direct_memo_miss"); mi != 4 {
		t.Fatalf("evicted entry should miss: misses = %d, want 4", mi)
	}
}

// TestDirectMemoConcurrentStress hammers one memo from many goroutines with
// an input domain four times the capacity, so hits, misses, duplicate-insert
// races and evictions all occur under contention. Run under -race it checks
// the lock discipline; the invariants below check that the LRU stays bounded
// and the counters stay consistent with each other.
func TestDirectMemoConcurrentStress(t *testing.T) {
	const (
		capacity   = 16
		goroutines = 8
		iters      = 2000
		domain     = capacity * 4
	)
	counters := metrics.NewCounterSet()
	m := NewDirectMemo(capacity, counters)
	p := memoProfile()

	// Expected encodings per input, computed up front: cached key-sets must
	// always match a fresh instantiation, whichever goroutine inserted them.
	want := make([]string, domain)
	for u := int64(0); u < domain; u++ {
		ks, err := p.InstantiateDirect(memoInputs(u))
		if err != nil {
			t.Fatal(err)
		}
		want[u] = string(ks.Reads[0].Encode())
	}

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 977))
			for i := 0; i < iters; i++ {
				u := rng.Int63n(domain)
				ks, err := m.InstantiateDirect(p, memoInputs(u))
				if err != nil {
					errs <- err
					return
				}
				if got := string(ks.Reads[0].Encode()); got != want[u] {
					errs <- fmt.Errorf("input %d: cached key %q, want %q", u, got, want[u])
					return
				}
				// The bound must hold at every moment, not just at the end.
				if n := m.Len(); n > capacity {
					errs <- fmt.Errorf("memo grew to %d entries (capacity %d)", n, capacity)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	hits := counters.Value("direct_memo_hit")
	misses := counters.Value("direct_memo_miss")
	evicts := counters.Value("direct_memo_evict")
	if hits+misses != goroutines*iters {
		t.Errorf("hit(%d)+miss(%d) = %d, want one of each per call (%d)",
			hits, misses, hits+misses, goroutines*iters)
	}
	// Every eviction removes an inserted entry, every insert was a miss (two
	// racing misses on one key insert once), so: inserts = evicts + Len, and
	// inserts <= misses.
	if n := int64(m.Len()); evicts+n > misses {
		t.Errorf("evicts(%d)+len(%d) exceeds misses(%d) — counters inconsistent", evicts, n, misses)
	}
	if m.Len() != capacity {
		t.Errorf("Len = %d after saturating workload, want full capacity %d", m.Len(), capacity)
	}
	if evicts == 0 {
		t.Error("no evictions despite domain 4x capacity — stress never overflowed the LRU")
	}
}

func TestDirectMemoErrorNotCached(t *testing.T) {
	m := NewDirectMemo(8, nil)
	// A profile with a pivot-dependent condition rejects InstantiateDirect.
	bad := &Profile{
		TxName: "badTx",
		Root: &Node{
			Cond: sym.NewPivot("T", []sym.Term{sym.Const{V: value.Int(1)}}, "f"),
			True: &Node{}, False: &Node{},
		},
	}
	if _, err := m.InstantiateDirect(bad, memoInputs(1)); err == nil {
		t.Fatal("expected error from pivot-dependent traversal")
	}
	if m.Len() != 0 {
		t.Fatalf("error was cached: Len = %d", m.Len())
	}
}

package profile

import (
	"testing"

	"prognosticator/internal/lang"
	"prognosticator/internal/sym"
	"prognosticator/internal/value"
)

func iv(name string, lo, hi int64) *sym.Var { return sym.NewInput(name, value.KindInt, lo, hi) }
func ic(i int64) sym.Term                   { return sym.Const{V: value.Int(i)} }

// fakePivots is a PivotReader backed by a map from "key.field" to values.
type fakePivots struct {
	vals  map[string]value.Value
	reads int
}

func (f *fakePivots) ReadPivot(k value.Key, field string) (value.Value, bool) {
	f.reads++
	v, ok := f.vals[string(k.Encode())+"."+field]
	return v, ok
}

// directProfile: read ACC/a, write ACC/a and ACC/(a+1). Pure IT.
func directProfile() *Profile {
	a := iv("a", 0, 9)
	return &Profile{
		TxName: "direct",
		Root: &Node{Seg: []Access{
			{Table: "ACC", Key: []sym.Term{a}},
			{Table: "ACC", Key: []sym.Term{a}, Write: true},
			{Table: "ACC", Key: []sym.Term{sym.Bin{Op: lang.OpAdd, L: a, R: ic(1)}}, Write: true},
		}},
	}
}

// pivotProfile: read DIST/d, then write ORDER/(pivot lastOrderId + 1). DT.
func pivotProfile() *Profile {
	d := iv("d", 1, 10)
	pv := sym.NewPivot("DIST", []sym.Term{d}, "lastOrderId")
	return &Profile{
		TxName: "neworder",
		Root: &Node{Seg: []Access{
			{Table: "DIST", Key: []sym.Term{d}},
			{Table: "ORDER", Key: []sym.Term{sym.Bin{Op: lang.OpAdd, L: pv, R: ic(1)}}, Write: true},
		}},
	}
}

// branchProfile: condition on input chooses between two write keys.
func branchProfile() *Profile {
	sel := iv("sel", 0, 1)
	return &Profile{
		TxName: "branchy",
		Root: &Node{
			Seg:  []Access{{Table: "T", Key: []sym.Term{ic(0)}}},
			Cond: sym.Bin{Op: lang.OpEq, L: sel, R: ic(0)},
			True: &Node{Seg: []Access{{Table: "T", Key: []sym.Term{ic(1)}, Write: true}}},
			False: &Node{
				Seg: []Access{{Table: "T", Key: []sym.Term{ic(2)}, Write: true}},
			},
		},
	}
}

func TestClassification(t *testing.T) {
	if got := directProfile().Class(); got != ClassIT {
		t.Fatalf("direct profile class = %v", got)
	}
	if got := pivotProfile().Class(); got != ClassDT {
		t.Fatalf("pivot profile class = %v", got)
	}
	rot := &Profile{TxName: "ro", Root: &Node{Seg: []Access{{Table: "T", Key: []sym.Term{ic(1)}}}}}
	if got := rot.Class(); got != ClassROT {
		t.Fatalf("read-only profile class = %v", got)
	}
	// A DT whose pivot appears only in a condition (not a key).
	pv := sym.NewPivot("T", []sym.Term{ic(1)}, "f")
	condDT := &Profile{TxName: "cdt", Root: &Node{
		Cond:  sym.Bin{Op: lang.OpGt, L: pv, R: ic(0)},
		True:  &Node{Seg: []Access{{Table: "T", Key: []sym.Term{ic(1)}, Write: true}}},
		False: &Node{},
	}}
	if got := condDT.Class(); got != ClassDT {
		t.Fatalf("condition-pivot profile class = %v", got)
	}
	if condDT.PivotFreeTraversal() {
		t.Fatal("condition pivot must disable pivot-free traversal")
	}
	if !pivotProfile().PivotFreeTraversal() {
		t.Fatal("key-only pivots should allow pivot-free traversal")
	}
}

func TestClassStrings(t *testing.T) {
	if ClassROT.String() != "ROT" || ClassIT.String() != "IT" || ClassDT.String() != "DT" {
		t.Fatal("class strings")
	}
	if Class(0).String() != "?" {
		t.Fatal("unknown class string")
	}
}

func TestInstantiateDirect(t *testing.T) {
	ks, err := directProfile().Instantiate(map[string]value.Value{"a": value.Int(4)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks.Reads) != 1 || ks.Reads[0].String() != "ACC/i4" {
		t.Fatalf("reads = %v", ks.Reads)
	}
	if len(ks.Writes) != 2 || ks.Writes[1].String() != "ACC/i5" {
		t.Fatalf("writes = %v", ks.Writes)
	}
	if len(ks.Pivots) != 0 {
		t.Fatalf("direct profile should observe no pivots: %v", ks.Pivots)
	}
	keys := ks.Keys()
	if len(keys) != 2 { // ACC/i4 deduped between read and write
		t.Fatalf("Keys = %v", keys)
	}
}

func TestInstantiatePivot(t *testing.T) {
	pr := &fakePivots{vals: map[string]value.Value{
		"DIST/i3.lastOrderId": value.Int(41),
	}}
	ks, err := pivotProfile().Instantiate(map[string]value.Value{"d": value.Int(3)}, pr)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks.Writes) != 1 || ks.Writes[0].String() != "ORDER/i42" {
		t.Fatalf("writes = %v", ks.Writes)
	}
	if len(ks.Pivots) != 1 {
		t.Fatalf("pivots = %v", ks.Pivots)
	}
	obs := ks.Pivots[0]
	if obs.Key.String() != "DIST/i3" || obs.Field != "lastOrderId" || obs.Value.MustInt() != 41 {
		t.Fatalf("observation = %+v", obs)
	}
}

func TestInstantiatePivotMissingItem(t *testing.T) {
	pr := &fakePivots{vals: map[string]value.Value{}}
	ks, err := pivotProfile().Instantiate(map[string]value.Value{"d": value.Int(3)}, pr)
	if err != nil {
		t.Fatal(err)
	}
	// Missing pivot reads as 0 ⇒ write key ORDER/i1.
	if ks.Writes[0].String() != "ORDER/i1" {
		t.Fatalf("writes = %v", ks.Writes)
	}
	if ks.Pivots[0].Value.MustInt() != 0 {
		t.Fatalf("missing pivot must observe 0, got %v", ks.Pivots[0].Value)
	}
}

func TestInstantiatePivotCached(t *testing.T) {
	// The same pivot used twice must be read once and observed once.
	d := iv("d", 1, 10)
	pv := sym.NewPivot("DIST", []sym.Term{d}, "seq")
	p := &Profile{TxName: "twice", Root: &Node{Seg: []Access{
		{Table: "A", Key: []sym.Term{pv}, Write: true},
		{Table: "B", Key: []sym.Term{pv}, Write: true},
	}}}
	pr := &fakePivots{vals: map[string]value.Value{"DIST/i1.seq": value.Int(9)}}
	ks, err := p.Instantiate(map[string]value.Value{"d": value.Int(1)}, pr)
	if err != nil {
		t.Fatal(err)
	}
	if pr.reads != 1 {
		t.Fatalf("pivot read %d times, want 1", pr.reads)
	}
	if len(ks.Pivots) != 1 {
		t.Fatalf("observations = %v", ks.Pivots)
	}
}

func TestInstantiateBranch(t *testing.T) {
	for sel, wantKey := range map[int64]string{0: "T/i1", 1: "T/i2"} {
		ks, err := branchProfile().Instantiate(map[string]value.Value{"sel": value.Int(sel)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(ks.Writes) != 1 || ks.Writes[0].String() != wantKey {
			t.Fatalf("sel=%d writes = %v, want %s", sel, ks.Writes, wantKey)
		}
	}
}

func TestInstantiateListElement(t *testing.T) {
	el := sym.NewListElem("ids", 2, value.KindInt, 0, 99)
	p := &Profile{TxName: "lst", Root: &Node{Seg: []Access{
		{Table: "T", Key: []sym.Term{el}, Write: true},
	}}}
	ks, err := p.Instantiate(map[string]value.Value{
		"ids": value.List(value.Int(5), value.Int(6), value.Int(7)),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ks.Writes[0].String() != "T/i7" {
		t.Fatalf("writes = %v", ks.Writes)
	}
}

func TestInstantiateErrors(t *testing.T) {
	if _, err := directProfile().Instantiate(map[string]value.Value{}, nil); err == nil {
		t.Fatal("missing input must error")
	}
	// DT without a pivot reader must error.
	if _, err := pivotProfile().Instantiate(map[string]value.Value{"d": value.Int(1)}, nil); err == nil {
		t.Fatal("missing pivot reader must error")
	}
	// Non-boolean condition.
	bad := &Profile{TxName: "bad", Root: &Node{
		Cond: ic(7), True: &Node{}, False: &Node{},
	}}
	if _, err := bad.Instantiate(map[string]value.Value{}, nil); err == nil {
		t.Fatal("non-bool condition must error")
	}
}

func TestNumLeaves(t *testing.T) {
	if got := directProfile().NumLeaves(); got != 1 {
		t.Fatalf("direct leaves = %d", got)
	}
	if got := branchProfile().NumLeaves(); got != 2 {
		t.Fatalf("branch leaves = %d", got)
	}
	var empty *Node
	if countLeaves(empty) != 0 {
		t.Fatal("nil node leaves")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, p := range []*Profile{directProfile(), pivotProfile(), branchProfile()} {
		p.Stats = Stats{StatesExplored: 3, TotalStates: 8, Depth: 1, DepthMax: 3, UniqueKeySets: 2, IndirectKeys: 1}
		data, err := Marshal(p)
		if err != nil {
			t.Fatalf("%s: marshal: %v", p.TxName, err)
		}
		back, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", p.TxName, err)
		}
		if back.TxName != p.TxName {
			t.Fatalf("name lost: %q", back.TxName)
		}
		if back.Class() != p.Class() {
			t.Fatalf("%s: class changed across codec", p.TxName)
		}
		if back.NumLeaves() != p.NumLeaves() {
			t.Fatalf("%s: leaves changed across codec", p.TxName)
		}
		if back.Stats != p.Stats {
			t.Fatalf("%s: stats changed: %+v", p.TxName, back.Stats)
		}
		// Instantiation must agree.
		inputs := map[string]value.Value{
			"a": value.Int(1), "d": value.Int(2), "sel": value.Int(1),
		}
		pr := &fakePivots{vals: map[string]value.Value{"DIST/i2.lastOrderId": value.Int(5)}}
		ks1, err1 := p.Instantiate(inputs, pr)
		ks2, err2 := back.Instantiate(inputs, pr)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: errors differ: %v vs %v", p.TxName, err1, err2)
		}
		if err1 == nil {
			if len(ks1.Writes) != len(ks2.Writes) {
				t.Fatalf("%s: writes differ across codec", p.TxName)
			}
			for i := range ks1.Writes {
				if !ks1.Writes[i].Equal(ks2.Writes[i]) {
					t.Fatalf("%s: write %d differs", p.TxName, i)
				}
			}
		}
	}
}

func TestCodecErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("{bad")); err == nil {
		t.Fatal("malformed profile JSON must error")
	}
	if _, err := Unmarshal([]byte(`{"tx":"x","root":{"cond":{"t":"mystery"}}}`)); err == nil {
		t.Fatal("bad term must error")
	}
}

func TestAccessString(t *testing.T) {
	a := Access{Table: "T", Key: []sym.Term{ic(1)}, Write: true}
	if a.String() != "W T/1" {
		t.Fatalf("Access.String = %q", a.String())
	}
	r := Access{Table: "T", Key: []sym.Term{ic(2)}}
	if r.String() != "R T/2" {
		t.Fatalf("Access.String = %q", r.String())
	}
}

package profile

import (
	"encoding/json"
	"fmt"

	"prognosticator/internal/sym"
)

// The JSON codec lets the client ship profiles (or their relevant subtrees)
// to replicas and lets cmd/profiler persist analysis results.

type accessJSON struct {
	Table  string            `json:"table"`
	Key    []json.RawMessage `json:"key"`
	Write  bool              `json:"write,omitempty"`
	Direct bool              `json:"direct,omitempty"`
}

type nodeJSON struct {
	Seg   []accessJSON    `json:"seg,omitempty"`
	Cond  json.RawMessage `json:"cond,omitempty"`
	True  *nodeJSON       `json:"true,omitempty"`
	False *nodeJSON       `json:"false,omitempty"`
}

type profileJSON struct {
	TxName string    `json:"tx"`
	Root   *nodeJSON `json:"root"`
	Stats  Stats     `json:"stats"`
}

// Marshal encodes p as JSON.
func Marshal(p *Profile) ([]byte, error) {
	root, err := marshalNode(p.Root)
	if err != nil {
		return nil, fmt.Errorf("profile %s: %w", p.TxName, err)
	}
	return json.Marshal(profileJSON{TxName: p.TxName, Root: root, Stats: p.Stats})
}

// Unmarshal decodes a profile encoded by Marshal.
func Unmarshal(data []byte) (*Profile, error) {
	var pj profileJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return nil, fmt.Errorf("profile: unmarshal: %w", err)
	}
	root, err := unmarshalNode(pj.Root)
	if err != nil {
		return nil, fmt.Errorf("profile %s: %w", pj.TxName, err)
	}
	return &Profile{TxName: pj.TxName, Root: root, Stats: pj.Stats}, nil
}

func marshalNode(n *Node) (*nodeJSON, error) {
	if n == nil {
		return nil, nil
	}
	nj := &nodeJSON{}
	for _, a := range n.Seg {
		aj := accessJSON{Table: a.Table, Write: a.Write, Direct: a.Direct}
		for _, k := range a.Key {
			raw, err := sym.MarshalTerm(k)
			if err != nil {
				return nil, err
			}
			aj.Key = append(aj.Key, raw)
		}
		nj.Seg = append(nj.Seg, aj)
	}
	if n.Cond != nil {
		raw, err := sym.MarshalTerm(n.Cond)
		if err != nil {
			return nil, err
		}
		nj.Cond = raw
		if nj.True, err = marshalNode(n.True); err != nil {
			return nil, err
		}
		if nj.False, err = marshalNode(n.False); err != nil {
			return nil, err
		}
	}
	return nj, nil
}

func unmarshalNode(nj *nodeJSON) (*Node, error) {
	if nj == nil {
		return nil, nil
	}
	n := &Node{}
	for _, aj := range nj.Seg {
		a := Access{Table: aj.Table, Write: aj.Write, Direct: aj.Direct}
		for _, raw := range aj.Key {
			k, err := sym.UnmarshalTerm(raw)
			if err != nil {
				return nil, err
			}
			a.Key = append(a.Key, k)
		}
		n.Seg = append(n.Seg, a)
	}
	if len(nj.Cond) > 0 {
		cond, err := sym.UnmarshalTerm(nj.Cond)
		if err != nil {
			return nil, err
		}
		n.Cond = cond
		if n.True, err = unmarshalNode(nj.True); err != nil {
			return nil, err
		}
		if n.False, err = unmarshalNode(nj.False); err != nil {
			return nil, err
		}
	}
	return n, nil
}

package store

import (
	"testing"
	"testing/quick"

	"prognosticator/internal/value"
)

// testing/quick properties on the MVCC store.

func TestQuickLatestWriteWins(t *testing.T) {
	f := func(key int16, a, b int32) bool {
		s := New()
		k := value.NewKey("Q", value.Int(int64(key)))
		s.Put(0, k, rec(int64(a)))
		e := s.BeginEpoch()
		s.Put(e, k, rec(int64(b)))
		got, ok := s.Get(e, k)
		if !ok {
			return false
		}
		f, _ := got.Field("v")
		old, okOld := s.Get(0, k)
		if !okOld {
			return false
		}
		fo, _ := old.Field("v")
		return f.MustInt() == int64(b) && fo.MustInt() == int64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeleteHidesOnlyFromLaterEpochs(t *testing.T) {
	f := func(key int16, v int32) bool {
		s := New()
		k := value.NewKey("Q", value.Int(int64(key)))
		s.Put(0, k, rec(int64(v)))
		e := s.BeginEpoch()
		s.Delete(e, k)
		_, okOld := s.Get(0, k)
		_, okNew := s.Get(e, k)
		return okOld && !okNew
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStateHashInsensitiveToWriteOrder(t *testing.T) {
	f := func(keys []int8) bool {
		if len(keys) == 0 {
			return true
		}
		a, b := New(), New()
		for _, k := range keys {
			a.Put(0, value.NewKey("Q", value.Int(int64(k))), rec(int64(k)))
		}
		for i := len(keys) - 1; i >= 0; i-- {
			b.Put(0, value.NewKey("Q", value.Int(int64(keys[i]))), rec(int64(keys[i])))
		}
		return a.StateHash(0) == b.StateHash(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGCPreservesVisibleState(t *testing.T) {
	f := func(writes []uint8) bool {
		s := New()
		k := value.NewKey("Q", value.Int(1))
		epoch := uint64(0)
		for _, w := range writes {
			epoch = s.BeginEpoch()
			s.Put(epoch, k, rec(int64(w)))
		}
		if epoch == 0 {
			return true
		}
		before, okB := s.Get(epoch, k)
		s.GC(epoch)
		after, okA := s.Get(epoch, k)
		return okB == okA && (!okB || before.Equal(after))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

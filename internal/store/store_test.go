package store

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"prognosticator/internal/value"
)

func k(i int64) value.Key     { return value.NewKey("T", value.Int(i)) }
func rec(i int64) value.Value { return value.Record(map[string]value.Value{"v": value.Int(i)}) }
func vOf(v value.Value) int64 { f, _ := v.Field("v"); return f.MustInt() }

func TestBasicPutGet(t *testing.T) {
	s := New()
	s.Put(0, k(1), rec(10))
	got, ok := s.Get(0, k(1))
	if !ok || vOf(got) != 10 {
		t.Fatalf("Get = %v,%v", got, ok)
	}
	if _, ok := s.Get(0, k(2)); ok {
		t.Fatal("missing key must report false")
	}
}

func TestEpochVisibility(t *testing.T) {
	s := New()
	s.Put(0, k(1), rec(10))
	e1 := s.BeginEpoch()
	if e1 != 1 {
		t.Fatalf("first epoch = %d", e1)
	}
	s.Put(e1, k(1), rec(20))
	// Snapshot at 0 still sees the old value; epoch 1 sees the new.
	if got, _ := s.Get(0, k(1)); vOf(got) != 10 {
		t.Fatalf("epoch0 read = %v", got)
	}
	if got, _ := s.Get(1, k(1)); vOf(got) != 20 {
		t.Fatalf("epoch1 read = %v", got)
	}
	// Future epochs see the latest.
	if got, _ := s.Get(9, k(1)); vOf(got) != 20 {
		t.Fatalf("epoch9 read = %v", got)
	}
}

func TestOverwriteWithinEpoch(t *testing.T) {
	s := New()
	e := s.BeginEpoch()
	s.Put(e, k(1), rec(1))
	s.Put(e, k(1), rec(2))
	if got, _ := s.Get(e, k(1)); vOf(got) != 2 {
		t.Fatalf("same-epoch overwrite = %v", got)
	}
	// Version chain must not grow.
	sh := s.shardFor(k(1).Encode())
	if n := len(sh.items[k(1).Encode()].versions); n != 1 {
		t.Fatalf("version chain len = %d, want 1", n)
	}
}

func TestDeleteAndTombstone(t *testing.T) {
	s := New()
	s.Put(0, k(1), rec(1))
	e := s.BeginEpoch()
	s.Delete(e, k(1))
	if _, ok := s.Get(e, k(1)); ok {
		t.Fatal("deleted key visible at delete epoch")
	}
	if got, ok := s.Get(0, k(1)); !ok || vOf(got) != 1 {
		t.Fatal("old snapshot must still see the value")
	}
}

func TestGC(t *testing.T) {
	s := New()
	s.Put(0, k(1), rec(0))
	for i := 1; i <= 5; i++ {
		e := s.BeginEpoch()
		s.Put(e, k(1), rec(int64(i)))
	}
	s.GC(4)
	// Reads at >= 4 still correct.
	if got, _ := s.Get(4, k(1)); vOf(got) != 4 {
		t.Fatalf("epoch4 after GC = %v", got)
	}
	if got, _ := s.Get(5, k(1)); vOf(got) != 5 {
		t.Fatalf("epoch5 after GC = %v", got)
	}
	sh := s.shardFor(k(1).Encode())
	if n := len(sh.items[k(1).Encode()].versions); n != 2 {
		t.Fatalf("versions after GC = %d, want 2", n)
	}
}

func TestGCDropsDeadTombstones(t *testing.T) {
	s := New()
	s.Put(0, k(1), rec(1))
	e := s.BeginEpoch()
	s.Delete(e, k(1))
	s.GC(e)
	if s.Len() != 0 {
		t.Fatalf("Len after tombstone GC = %d", s.Len())
	}
	sh := s.shardFor(k(1).Encode())
	if _, ok := sh.items[k(1).Encode()]; ok {
		t.Fatal("tombstone chain must be removed")
	}
}

func TestLen(t *testing.T) {
	s := New()
	for i := int64(0); i < 10; i++ {
		s.Put(0, k(i), rec(i))
	}
	e := s.BeginEpoch()
	s.Delete(e, k(0))
	if got := s.Len(); got != 9 {
		t.Fatalf("Len = %d", got)
	}
}

func TestStateHashDeterministic(t *testing.T) {
	build := func(order []int64) *Store {
		s := New()
		for _, i := range order {
			s.Put(0, k(i), rec(i*i))
		}
		return s
	}
	a := build([]int64{1, 2, 3, 4, 5})
	b := build([]int64{5, 3, 1, 4, 2})
	if a.StateHash(0) != b.StateHash(0) {
		t.Fatal("state hash must be insertion-order independent")
	}
	c := build([]int64{1, 2, 3, 4, 6})
	if a.StateHash(0) == c.StateHash(0) {
		t.Fatal("different states should hash differently")
	}
}

func TestStateHashRespectsEpoch(t *testing.T) {
	s := New()
	s.Put(0, k(1), rec(1))
	h0 := s.StateHash(0)
	e := s.BeginEpoch()
	s.Put(e, k(1), rec(2))
	if s.StateHash(0) != h0 {
		t.Fatal("old epoch hash changed by new writes")
	}
	if s.StateHash(e) == h0 {
		t.Fatal("new epoch hash should differ")
	}
}

func TestForEach(t *testing.T) {
	s := New()
	for i := int64(0); i < 5; i++ {
		s.Put(0, k(i), rec(i))
	}
	seen := map[value.Encoded]bool{}
	s.ForEach(0, func(e value.Encoded, v value.Value) { seen[e] = true })
	if len(seen) != 5 {
		t.Fatalf("ForEach visited %d keys", len(seen))
	}
}

func TestReadViewSemantics(t *testing.T) {
	s := New()
	s.Put(0, k(1), rec(7))
	e := s.BeginEpoch()
	s.Put(e, k(1), rec(8))
	rv := s.ViewAt(0)
	if rv.Epoch() != 0 {
		t.Fatalf("view epoch = %d", rv.Epoch())
	}
	got, ok := rv.Get(k(1))
	if !ok || vOf(got) != 7 {
		t.Fatalf("read view Get = %v", got)
	}
	pv, found := rv.ReadPivot(k(1), "v")
	if !found || pv.MustInt() != 7 {
		t.Fatalf("ReadPivot = %v,%v", pv, found)
	}
	if missing, found := rv.ReadPivot(k(1), "nope"); !found || missing.MustInt() != 0 {
		t.Fatalf("missing field pivot = %v,%v", missing, found)
	}
	if _, found := rv.ReadPivot(k(99), "v"); found {
		t.Fatal("missing item pivot must report false")
	}
}

func TestReadViewRejectsWrites(t *testing.T) {
	s := New()
	rv := s.ViewAt(0)
	assertPanics(t, func() { rv.Put(k(1), rec(1)) })
	assertPanics(t, func() { rv.Delete(k(1)) })
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestWriteViewSemantics(t *testing.T) {
	s := New()
	s.Put(0, k(1), rec(1))
	e := s.BeginEpoch()
	wv := s.WriterAt(e)
	if wv.Epoch() != e {
		t.Fatalf("write view epoch = %d", wv.Epoch())
	}
	// Sees pre-batch state...
	if got, _ := wv.Get(k(1)); vOf(got) != 1 {
		t.Fatalf("write view initial read = %v", got)
	}
	// ...and its own (and same-batch) writes.
	wv.Put(k(1), rec(5))
	if got, _ := wv.Get(k(1)); vOf(got) != 5 {
		t.Fatalf("write view read-own-write = %v", got)
	}
	if pv, found := wv.ReadPivot(k(1), "v"); !found || pv.MustInt() != 5 {
		t.Fatalf("write view pivot = %v,%v", pv, found)
	}
	wv.Delete(k(1))
	if _, ok := wv.Get(k(1)); ok {
		t.Fatal("deleted through write view but visible")
	}
	// Previous epoch unaffected.
	if got, ok := s.Get(0, k(1)); !ok || vOf(got) != 1 {
		t.Fatal("previous epoch affected by write view")
	}
}

func TestConcurrentDisjointWriters(t *testing.T) {
	s := New()
	e := s.BeginEpoch()
	const writers, perWriter = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				kk := value.NewKey("T", value.Int(int64(w)), value.Int(int64(i)))
				s.Put(e, kk, rec(int64(w*1000+i)))
			}
		}(w)
	}
	wg.Wait()
	if got := s.Len(); got != writers*perWriter {
		t.Fatalf("Len = %d, want %d", got, writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			kk := value.NewKey("T", value.Int(int64(w)), value.Int(int64(i)))
			got, ok := s.Get(e, kk)
			if !ok || vOf(got) != int64(w*1000+i) {
				t.Fatalf("w=%d i=%d got %v,%v", w, i, got, ok)
			}
		}
	}
}

func TestConcurrentReadersDuringWrites(t *testing.T) {
	s := New()
	for i := int64(0); i < 100; i++ {
		s.Put(0, k(i), rec(i))
	}
	e := s.BeginEpoch()
	var wg sync.WaitGroup
	// Writers update at epoch e; readers at snapshot 0 must always see the
	// original values.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 100; i++ {
				s.Put(e, k(i), rec(i+1000))
			}
		}()
	}
	errs := make(chan error, 4)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rv := s.ViewAt(0)
			for i := int64(0); i < 100; i++ {
				got, ok := rv.Get(k(i))
				if !ok || vOf(got) != i {
					errs <- fmt.Errorf("snapshot violated at %d: %v,%v", i, got, ok)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPropVersionVisibilityRandom(t *testing.T) {
	// Random history of puts/deletes across epochs; a brute-force oracle
	// tracks the expected visible value per epoch.
	r := rand.New(rand.NewSource(99))
	s := New()
	type entry struct {
		val     int64
		deleted bool
	}
	oracle := map[int64]map[uint64]entry{} // key -> epoch -> last op
	epoch := uint64(0)
	for step := 0; step < 2000; step++ {
		switch r.Intn(10) {
		case 0:
			epoch = s.BeginEpoch()
		case 1, 2:
			ki := int64(r.Intn(20))
			s.Delete(epoch, k(ki))
			if oracle[ki] == nil {
				oracle[ki] = map[uint64]entry{}
			}
			oracle[ki][epoch] = entry{deleted: true}
		default:
			ki := int64(r.Intn(20))
			vv := int64(r.Intn(1000))
			s.Put(epoch, k(ki), rec(vv))
			if oracle[ki] == nil {
				oracle[ki] = map[uint64]entry{}
			}
			oracle[ki][epoch] = entry{val: vv}
		}
	}
	for ki, hist := range oracle {
		for at := uint64(0); at <= epoch; at++ {
			// oracle lookup: newest epoch <= at
			var best *entry
			for e := int64(at); e >= 0; e-- {
				if ent, ok := hist[uint64(e)]; ok {
					best = &ent
					break
				}
			}
			got, ok := s.Get(at, k(ki))
			switch {
			case best == nil || best.deleted:
				if ok {
					t.Fatalf("key %d at %d: expected absent, got %v", ki, at, got)
				}
			default:
				if !ok || vOf(got) != best.val {
					t.Fatalf("key %d at %d: want %d, got %v,%v", ki, at, best.val, got, ok)
				}
			}
		}
	}
}

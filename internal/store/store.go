// Package store implements the replica data store: a sharded, multi-version
// key/value store with batch-epoch granularity. The paper runs on RocksDB;
// this substitute provides the two properties the deterministic engine
// actually relies on: (i) key-granular GET/PUT and (ii) stable snapshots —
// read-only transactions and the prepare-indirect-keys phase read the state
// as of the end of the previous batch, while update transactions read and
// write the current batch's state (§III-C).
package store

import (
	"hash/fnv"
	"sync"

	"prognosticator/internal/value"
)

// shardCount is a power of two; keys spread across shards by hash.
const shardCount = 64

// Store is a multi-version key/value store. Versions are stamped with batch
// epochs: epoch 0 is the populated initial state, and each executed batch
// advances the epoch by one. All methods are safe for concurrent use.
type Store struct {
	shards [shardCount]shard
	mu     sync.Mutex // guards epoch
	epoch  uint64
}

type shard struct {
	mu    sync.RWMutex
	items map[value.Encoded]*chain
}

type chain struct {
	versions []version // ascending by epoch; at most one per epoch
}

type version struct {
	epoch   uint64
	val     value.Value
	deleted bool
}

// New returns an empty store at epoch 0.
func New() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].items = make(map[value.Encoded]*chain)
	}
	return s
}

func (s *Store) shardFor(e value.Encoded) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(e))
	return &s.shards[h.Sum32()&(shardCount-1)]
}

// Epoch returns the current batch epoch.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// BeginEpoch advances to the next batch epoch and returns it. The engine
// calls it once per batch; writes of the batch are stamped with the returned
// epoch, and snapshot reads of the batch use epoch-1.
func (s *Store) BeginEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
	return s.epoch
}

// Put writes v for k at the given epoch. Writing twice at one epoch
// overwrites (conflicting transactions within a batch are serialized by the
// lock table, so the last write in queue order wins, deterministically).
func (s *Store) Put(epoch uint64, k value.Key, v value.Value) {
	s.putVersion(epoch, k, version{epoch: epoch, val: v})
}

// Delete removes k at the given epoch (a tombstone version).
func (s *Store) Delete(epoch uint64, k value.Key) {
	s.putVersion(epoch, k, version{epoch: epoch, deleted: true})
}

func (s *Store) putVersion(epoch uint64, k value.Key, ver version) {
	e := k.Encode()
	sh := s.shardFor(e)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c, ok := sh.items[e]
	if !ok {
		c = &chain{}
		sh.items[e] = c
	}
	if n := len(c.versions); n > 0 && c.versions[n-1].epoch == epoch {
		c.versions[n-1] = ver
		return
	}
	c.versions = append(c.versions, ver)
}

// Get returns the value of k visible at the given epoch: the newest version
// with version.epoch <= epoch. found is false if no such version exists or
// it is a tombstone.
func (s *Store) Get(epoch uint64, k value.Key) (value.Value, bool) {
	e := k.Encode()
	sh := s.shardFor(e)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	c, ok := sh.items[e]
	if !ok {
		return value.Value{}, false
	}
	for i := len(c.versions) - 1; i >= 0; i-- {
		if c.versions[i].epoch <= epoch {
			if c.versions[i].deleted {
				return value.Value{}, false
			}
			return c.versions[i].val, true
		}
	}
	return value.Value{}, false
}

// GC drops versions that no reader at epoch >= keepFrom can observe: for
// each key, all but the newest version with epoch <= keepFrom, plus every
// newer version, are retained. Tombstones that become the oldest retained
// version are dropped entirely.
func (s *Store) GC(keepFrom uint64) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for e, c := range sh.items {
			idx := -1 // newest version <= keepFrom
			for j, v := range c.versions {
				if v.epoch <= keepFrom {
					idx = j
				} else {
					break
				}
			}
			if idx > 0 {
				c.versions = append(c.versions[:0], c.versions[idx:]...)
			}
			if len(c.versions) == 1 && c.versions[0].deleted {
				delete(sh.items, e)
			}
		}
		sh.mu.Unlock()
	}
}

// Len returns the number of live keys at the current epoch.
func (s *Store) Len() int {
	epoch := s.Epoch()
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, c := range sh.items {
			for j := len(c.versions) - 1; j >= 0; j-- {
				if c.versions[j].epoch <= epoch {
					if !c.versions[j].deleted {
						n++
					}
					break
				}
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// StateHash returns an order-independent hash of the live state at the
// given epoch. Two replicas that executed the same batches must produce
// identical hashes — the determinism check used throughout the tests and by
// internal/replica.
func (s *Store) StateHash(epoch uint64) uint64 {
	var acc uint64
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for e, c := range sh.items {
			for j := len(c.versions) - 1; j >= 0; j-- {
				if c.versions[j].epoch <= epoch {
					if !c.versions[j].deleted {
						h := fnv.New64a()
						_, _ = h.Write([]byte(e))
						kh := h.Sum64()
						acc += kh*31 + c.versions[j].val.Hash()
					}
					break
				}
			}
		}
		sh.mu.RUnlock()
	}
	return acc
}

// Restore replaces the entire store contents with items, flattening every
// pair to a single version at epoch 1 and setting the current epoch to 1.
// Used when installing a snapshot: StateHash is content-only, so a restored
// replica hashes identically to one that executed every batch even though
// their epoch counters differ.
func (s *Store) Restore(items map[value.Encoded]value.Value) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.items = make(map[value.Encoded]*chain)
		sh.mu.Unlock()
	}
	for e, v := range items {
		sh := s.shardFor(e)
		sh.mu.Lock()
		sh.items[e] = &chain{versions: []version{{epoch: 1, val: v}}}
		sh.mu.Unlock()
	}
	s.mu.Lock()
	s.epoch = 1
	s.mu.Unlock()
}

// ForEach calls fn for every live (key, value) pair at the given epoch.
// Iteration order is unspecified. fn must not call back into the store.
func (s *Store) ForEach(epoch uint64, fn func(k value.Encoded, v value.Value)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for e, c := range sh.items {
			for j := len(c.versions) - 1; j >= 0; j-- {
				if c.versions[j].epoch <= epoch {
					if !c.versions[j].deleted {
						fn(e, c.versions[j].val)
					}
					break
				}
			}
		}
		sh.mu.RUnlock()
	}
}

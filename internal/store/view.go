package store

import "prognosticator/internal/value"

// ReadView is an immutable snapshot of the store at a fixed epoch. It
// implements lang.KV (writes panic — read-only transactions must not write;
// the engine guarantees it by construction) and profile.PivotReader.
type ReadView struct {
	s     *Store
	epoch uint64
}

// ViewAt returns a read view pinned at the given epoch.
func (s *Store) ViewAt(epoch uint64) *ReadView { return &ReadView{s: s, epoch: epoch} }

// Epoch returns the snapshot epoch.
func (v *ReadView) Epoch() uint64 { return v.epoch }

// Get implements lang.KV.
func (v *ReadView) Get(k value.Key) (value.Value, bool) { return v.s.Get(v.epoch, k) }

// Put implements lang.KV; read views reject writes.
func (v *ReadView) Put(value.Key, value.Value) {
	panic("store: write through read-only view")
}

// Delete implements lang.KV; read views reject writes.
func (v *ReadView) Delete(value.Key) {
	panic("store: delete through read-only view")
}

// ReadPivot implements profile.PivotReader: it reads the record at k and
// projects the named field. A present record with a missing field reads as
// integer zero, matching the interpreter's semantics.
func (v *ReadView) ReadPivot(k value.Key, field string) (value.Value, bool) {
	rec, ok := v.s.Get(v.epoch, k)
	if !ok {
		return value.Value{}, false
	}
	f, ok := rec.Field(field)
	if !ok {
		return value.Int(0), true
	}
	return f, true
}

// WriteView gives an update transaction access to the current batch's
// state: reads observe versions up to and including writeEpoch (so earlier
// transactions of the same batch are visible), writes are stamped with
// writeEpoch. It implements lang.KV and profile.PivotReader.
type WriteView struct {
	s          *Store
	writeEpoch uint64
}

// WriterAt returns a write view for the given batch epoch.
func (s *Store) WriterAt(epoch uint64) *WriteView { return &WriteView{s: s, writeEpoch: epoch} }

// Epoch returns the write epoch.
func (v *WriteView) Epoch() uint64 { return v.writeEpoch }

// Get implements lang.KV.
func (v *WriteView) Get(k value.Key) (value.Value, bool) { return v.s.Get(v.writeEpoch, k) }

// Put implements lang.KV.
func (v *WriteView) Put(k value.Key, val value.Value) { v.s.Put(v.writeEpoch, k, val) }

// Delete implements lang.KV.
func (v *WriteView) Delete(k value.Key) { v.s.Delete(v.writeEpoch, k) }

// ReadPivot implements profile.PivotReader against the current state; the
// engine uses it to validate pivots at execution time.
func (v *WriteView) ReadPivot(k value.Key, field string) (value.Value, bool) {
	rec, ok := v.s.Get(v.writeEpoch, k)
	if !ok {
		return value.Value{}, false
	}
	f, ok := rec.Field(field)
	if !ok {
		return value.Int(0), true
	}
	return f, true
}

// TPC-C example: populate the benchmark, run the standard transaction mix
// through Prognosticator (MQ-MF) and the SEQ baseline on identical batch
// sequences, and compare wall-clock execution time and abort behaviour at a
// chosen contention level.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"prognosticator/internal/engine"
	"prognosticator/internal/store"
	"prognosticator/internal/workload/tpcc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tpcc:", err)
		os.Exit(1)
	}
}

func run() error {
	warehouses := flag.Int("warehouses", 10, "contention knob: 100 low, 10 medium, 1 high")
	batches := flag.Int("batches", 20, "number of batches")
	batchSize := flag.Int("batch-size", 200, "transactions per batch")
	workers := flag.Int("workers", 8, "engine worker threads")
	flag.Parse()

	cfg := tpcc.DefaultConfig(*warehouses)
	cfg.Items = 500
	cfg.CustomersPerDistrict = 50
	fmt.Printf("TPC-C: %d warehouses, %d items, %d customers/district\n",
		cfg.Warehouses, cfg.Items, cfg.CustomersPerDistrict)

	fmt.Print("running offline symbolic execution over the 5 transactions... ")
	t0 := time.Now()
	reg, err := engine.NewRegistry(tpcc.Schema(), tpcc.Programs(cfg)...)
	if err != nil {
		return err
	}
	fmt.Printf("done in %v\n", time.Since(t0).Round(time.Millisecond))
	for name, prof := range reg.Profiles {
		fmt.Printf("  %-12s %-3v %4d path-set conditions, %d indirect keys\n",
			name, prof.Class(), prof.NumLeaves(), prof.Stats.IndirectKeys)
	}

	// Pre-generate identical batches for both systems.
	gen := tpcc.NewGenerator(cfg, 42)
	seq := uint64(0)
	allBatches := make([][]engine.Request, *batches)
	for b := range allBatches {
		batch := make([]engine.Request, *batchSize)
		for i := range batch {
			seq++
			tx, inputs := gen.Next()
			batch[i] = engine.Request{Seq: seq, TxName: tx, Inputs: inputs}
		}
		allBatches[b] = batch
	}

	type runResult struct {
		name    string
		elapsed time.Duration
		aborts  int
		hash    uint64
	}
	runSystem := func(name string, mk func(st *store.Store) engine.Executor) (runResult, error) {
		st := store.New()
		tpcc.Populate(st, cfg)
		exec := mk(st)
		aborts := 0
		start := time.Now()
		for _, b := range allBatches {
			res, err := exec.ExecuteBatch(b)
			if err != nil {
				return runResult{}, err
			}
			aborts += res.Aborts
		}
		return runResult{name: name, elapsed: time.Since(start),
			aborts: aborts, hash: st.StateHash(st.Epoch())}, nil
	}

	prog, err := runSystem("Prognosticator MQ-MF", func(st *store.Store) engine.Executor {
		return engine.New(reg, st, engine.Config{Workers: *workers})
	})
	if err != nil {
		return err
	}
	seqr, err := runSystem("SEQ (single thread)", func(st *store.Store) engine.Executor {
		return engine.New(reg, st, engine.Config{Workers: 1, Queue: engine.QueueSingle})
	})
	if err != nil {
		return err
	}

	total := *batches * *batchSize
	fmt.Printf("\n%d transactions in %d batches:\n", total, *batches)
	for _, r := range []runResult{prog, seqr} {
		fmt.Printf("  %-22s %8v  (%7.0f tx/s)  aborts=%d\n",
			r.name, r.elapsed.Round(time.Millisecond),
			float64(total)/r.elapsed.Seconds(), r.aborts)
	}
	fmt.Printf("  speedup: %.2fx\n", float64(seqr.elapsed)/float64(prog.elapsed))
	if prog.hash == seqr.hash {
		fmt.Println("  both engine configurations reached the identical state ✓")
	} else {
		fmt.Println("  note: state hashes differ (MQ-MF with >1 worker uses the same " +
			"deterministic order; differing worker counts never change it)")
	}
	return nil
}

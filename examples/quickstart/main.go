// Quickstart: author a transaction in the stored-procedure language, run
// the offline symbolic-execution analysis, inspect the resulting profile,
// and execute a batch deterministically.
package main

import (
	"fmt"
	"os"

	prog "prognosticator"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Declare the schema: one ACCOUNTS table keyed by a single int.
	schema := prog.NewSchema(prog.TableSpec{Name: "ACCOUNTS", KeyArity: 1})

	// 2. Write a transfer transaction. Parameters carry bounded domains —
	//    the symbolic execution uses them to decide path feasibility.
	transfer := &prog.Program{
		Name: "transfer",
		Params: []prog.Param{
			prog.IntParam("src", 0, 999),
			prog.IntParam("dst", 0, 999),
			prog.IntParam("amount", 1, 1000),
		},
		Body: []prog.Stmt{
			prog.GetS("s", "ACCOUNTS", prog.P("src")),
			prog.GetS("d", "ACCOUNTS", prog.P("dst")),
			prog.IfS(prog.Ge(prog.Fld(prog.L("s"), "bal"), prog.P("amount")),
				prog.SetF("s", "bal", prog.Sub(prog.Fld(prog.L("s"), "bal"), prog.P("amount"))),
				prog.SetF("d", "bal", prog.Add(prog.Fld(prog.L("d"), "bal"), prog.P("amount"))),
				prog.PutS("ACCOUNTS", prog.KeyExpr(prog.P("src")), prog.L("s")),
				prog.PutS("ACCOUNTS", prog.KeyExpr(prog.P("dst")), prog.L("d")),
				prog.EmitS("ok", prog.Cb(true)),
			),
		},
	}
	fmt.Println(prog.FormatSource(transfer))

	// 3. Build the registry: validates the program and runs the offline
	//    symbolic execution, producing the transaction profile.
	reg, err := prog.NewRegistry(schema, transfer)
	if err != nil {
		return err
	}
	p := reg.Profiles["transfer"]
	fmt.Printf("profile: class=%v, %d path-set conditions, %d states explored\n",
		p.Class(), p.NumLeaves(), p.Stats.StatesExplored)
	// The guard on s.bal is a pivot condition: whether the transfer
	// happens depends on store state, but the candidate key-set is known.
	ks, err := p.Instantiate(map[string]prog.Value{
		"src": prog.Int(7), "dst": prog.Int(9), "amount": prog.Int(100),
	}, emptyPivots{})
	if err != nil {
		return err
	}
	fmt.Printf("instantiated key-set for (7 -> 9): reads=%v writes=%v\n\n", ks.Reads, ks.Writes)

	// 4. Populate a store and execute an ordered batch with 4 workers.
	st := prog.NewStore()
	for i := int64(0); i < 10; i++ {
		st.Put(0, prog.NewKey("ACCOUNTS", prog.Int(i)),
			prog.RecV(map[string]prog.Value{"bal": prog.Int(500)}))
	}
	eng := prog.NewEngine(reg, st, prog.EngineConfig{Workers: 4})
	res, err := eng.ExecuteBatch([]prog.Request{
		{Seq: 1, TxName: "transfer", Inputs: inputs(1, 2, 300)},
		{Seq: 2, TxName: "transfer", Inputs: inputs(3, 4, 200)}, // disjoint: runs in parallel
		{Seq: 3, TxName: "transfer", Inputs: inputs(2, 5, 600)}, // depends on seq 1's deposit
	})
	if err != nil {
		return err
	}
	// Seq 3 depends on seq 1's deposit: its pivot observation (account 2's
	// balance) goes stale when seq 1 commits first, so it aborts once and
	// is re-executed against the fresh state — the paper's §III-C flow.
	fmt.Printf("batch committed: %d updates, %d aborts\n", res.Updates, res.Aborts)
	for _, o := range res.Outcomes {
		fmt.Printf("  seq %d: class=%v aborts=%d prepare=%v exec=%v emitted=%v\n",
			o.Seq, o.Class, o.Aborts, o.Prepare, o.Exec, o.Emitted)
	}
	for _, acc := range []int64{1, 2, 3, 4, 5} {
		rec, _ := st.Get(st.Epoch(), prog.NewKey("ACCOUNTS", prog.Int(acc)))
		bal, _ := rec.Field("bal")
		fmt.Printf("  account %d: balance %v\n", acc, bal)
	}
	return nil
}

func inputs(src, dst, amount int64) map[string]prog.Value {
	return map[string]prog.Value{
		"src": prog.Int(src), "dst": prog.Int(dst), "amount": prog.Int(amount),
	}
}

// emptyPivots resolves pivots against an empty store (fields read as 0).
type emptyPivots struct{}

func (emptyPivots) ReadPivot(prog.Key, string) (prog.Value, bool) {
	return prog.Value{}, false
}

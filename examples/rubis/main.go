// RUBiS example: run the RUBiS-C update mix (all five update transactions
// are dependent transactions — every one consults the store for a unique
// id) and compare the two failed-transaction strategies: sequential
// re-execution (SF) vs re-enqueueing (MF). Under RUBiS-C's heavy counter
// contention SF aborts far less — the paper's §IV-B finding.
package main

import (
	"flag"
	"fmt"
	"os"

	"prognosticator/internal/engine"
	"prognosticator/internal/store"
	"prognosticator/internal/workload/rubis"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "rubis:", err)
		os.Exit(1)
	}
}

func run() error {
	users := flag.Int("users", 500, "user count")
	items := flag.Int("items", 500, "item count")
	batches := flag.Int("batches", 15, "batches to run")
	batchSize := flag.Int("batch-size", 150, "transactions per batch")
	flag.Parse()

	cfg := rubis.Config{Users: *users, Items: *items}
	reg, err := engine.NewRegistry(rubis.Schema(), rubis.Programs(cfg)...)
	if err != nil {
		return err
	}
	fmt.Println("RUBiS transaction classes (every update transaction is a DT):")
	for name, class := range reg.Classes {
		fmt.Printf("  %-14s %v\n", name, class)
	}

	// Identical batch sequences for both variants.
	gen := rubis.NewGenerator(cfg, 7)
	seq := uint64(0)
	allBatches := make([][]engine.Request, *batches)
	for b := range allBatches {
		batch := make([]engine.Request, *batchSize)
		for i := range batch {
			seq++
			tx, inputs := gen.Next()
			batch[i] = engine.Request{Seq: seq, TxName: tx, Inputs: inputs}
		}
		allBatches[b] = batch
	}

	type result struct {
		aborts int
		rounds int
		hash   uint64
	}
	runVariant := func(fail engine.FailMode) (result, error) {
		st := store.New()
		rubis.Populate(st, cfg)
		e := engine.New(reg, st, engine.Config{Workers: 8, Fail: fail})
		var res result
		for _, b := range allBatches {
			br, err := e.ExecuteBatch(b)
			if err != nil {
				return res, err
			}
			res.aborts += br.Aborts
			if br.FailRound > res.rounds {
				res.rounds = br.FailRound
			}
		}
		res.hash = st.StateHash(st.Epoch())
		return res, nil
	}

	sf, err := runVariant(engine.FailSequential)
	if err != nil {
		return err
	}
	mf, err := runVariant(engine.FailReenqueue)
	if err != nil {
		return err
	}
	total := *batches * *batchSize
	fmt.Printf("\nRUBiS-C, %d transactions:\n", total)
	fmt.Printf("  MQ-SF: %5d aborts (%.1f%%), worst batch needed %d retry round(s)\n",
		sf.aborts, 100*float64(sf.aborts)/float64(total), sf.rounds)
	fmt.Printf("  MQ-MF: %5d aborts (%.1f%%), worst batch needed %d retry round(s)\n",
		mf.aborts, 100*float64(mf.aborts)/float64(total), mf.rounds)
	if sf.aborts < mf.aborts {
		fmt.Printf("  -> SF aborts %.1fx less, as the paper reports for RUBiS-C (§IV-B)\n",
			float64(mf.aborts)/float64(sf.aborts))
	}
	fmt.Printf("  note: SF and MF schedule retries differently, so their serial\n")
	fmt.Printf("  orders (and final states) legitimately differ; each is\n")
	fmt.Printf("  deterministic across replicas (hashes %016x / %016x).\n", sf.hash, mf.hash)
	return nil
}

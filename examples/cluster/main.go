// Cluster example: a full in-process deployment — Raft-sequenced batches
// applied by three replicas, each running the Prognosticator engine with a
// different worker count. The state hashes after every batch demonstrate
// the system's reason for existing: deterministic replication without
// coordination during execution.
package main

import (
	"fmt"
	"os"
	"time"

	prog "prognosticator"
	"prognosticator/internal/engine"
	"prognosticator/internal/store"
	"prognosticator/internal/workload/rubis"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cluster:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := rubis.Config{Users: 200, Items: 200}
	reg, err := engine.NewRegistry(rubis.Schema(), rubis.Programs(cfg)...)
	if err != nil {
		return err
	}
	workerCounts := map[string]int{"replica-0": 1, "replica-1": 4, "replica-2": 16}
	cluster, err := prog.NewCluster(prog.ClusterConfig{
		Replicas: 3,
		Seed:     42,
		NewExecutor: func(id string, st *store.Store) (engine.Executor, error) {
			rubis.Populate(st, cfg)
			w := workerCounts[id]
			fmt.Printf("starting %s with %d workers\n", id, w)
			return engine.New(reg, st, engine.Config{Workers: w}), nil
		},
	})
	if err != nil {
		return err
	}
	defer cluster.Stop()

	gen := rubis.NewGenerator(cfg, 99)
	for b := 1; b <= 10; b++ {
		reqs := make([]struct {
			TxName string
			Inputs map[string]prog.Value
		}, 80)
		for i := range reqs {
			reqs[i].TxName, reqs[i].Inputs = gen.Next()
		}
		if err := cluster.SubmitBatch(reqs, 30*time.Second); err != nil {
			return err
		}
		hashes := cluster.StateHashes()
		status := "✓ identical"
		if !cluster.Converged() {
			status = "✗ DIVERGED"
		}
		fmt.Printf("batch %2d applied by all replicas — state %016x %s\n", b, hashes[0], status)
		if !cluster.Converged() {
			return fmt.Errorf("replicas diverged: %x", hashes)
		}
	}
	fmt.Println("\n10 batches, 800 transactions: replicas with 1, 4 and 16 workers")
	fmt.Println("reached bit-identical states after every single batch.")
	return nil
}

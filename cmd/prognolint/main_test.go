package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"prognosticator/internal/lint"
)

const lintbadPath = "../../testdata/lintbad.txn"

// runCapture invokes run with buffered streams.
func runCapture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestOutputDeterministic runs the CLI twice per output format and requires
// byte-identical output: CI diffs prognolint output against a checked-in
// baseline, so any map-order leak breaks the build.
func TestOutputDeterministic(t *testing.T) {
	for _, format := range [][]string{
		{lintbadPath},
		{"-json", lintbadPath},
		{"-sarif", lintbadPath},
	} {
		code1, out1, _ := runCapture(t, format...)
		code2, out2, _ := runCapture(t, format...)
		if code1 != code2 {
			t.Errorf("%v: exit codes differ across runs: %d vs %d", format, code1, code2)
		}
		if out1 != out2 {
			t.Errorf("%v: output differs across runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", format, out1, out2)
		}
		if out1 == "" {
			t.Errorf("%v: no output", format)
		}
	}
}

// TestProgramsReportedInNameOrder checks the per-file program sort.
func TestProgramsReportedInNameOrder(t *testing.T) {
	_, out, _ := runCapture(t, "-json", lintbadPath)
	var findings []struct {
		Prog string `json:"prog"`
	}
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("unmarshal -json output: %v", err)
	}
	if len(findings) == 0 {
		t.Fatal("lintbad.txn produced no findings")
	}
	var progs []string
	for _, f := range findings {
		if len(progs) == 0 || progs[len(progs)-1] != f.Prog {
			progs = append(progs, f.Prog)
		}
	}
	for i := 1; i < len(progs); i++ {
		if progs[i-1] > progs[i] {
			t.Fatalf("programs out of name order: %q before %q (full order %v)", progs[i-1], progs[i], progs)
		}
	}
}

func TestSARIFOutput(t *testing.T) {
	code, out, stderr := runCapture(t, "-sarif", lintbadPath)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (lintbad has warnings); stderr: %s", code, stderr)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "prognolint" {
		t.Errorf("driver name = %q", r.Tool.Driver.Name)
	}
	hasRule := map[string]bool{}
	for _, rule := range r.Tool.Driver.Rules {
		hasRule[rule.ID] = true
	}
	for _, want := range []string{"dead-branch", "key-determinism", "pivot-key", "profile-soundness"} {
		if !hasRule[want] {
			t.Errorf("rule table missing %q", want)
		}
	}
	if len(r.Results) == 0 {
		t.Fatal("no results for lintbad.txn")
	}
	for _, res := range r.Results {
		if res.Level != "error" && res.Level != "warning" && res.Level != "note" {
			t.Errorf("result %q has invalid level %q", res.Message.Text, res.Level)
		}
		if len(res.Locations) == 0 || res.Locations[0].PhysicalLocation.ArtifactLocation.URI == "" {
			t.Errorf("result %q has no artifact location", res.Message.Text)
		}
	}
}

func TestExplain(t *testing.T) {
	code, out, _ := runCapture(t, "-explain", "key-determinism")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !strings.Contains(out, "direct") || !strings.Contains(out, "pivot-dependent") {
		t.Errorf("explanation lacks the classification vocabulary: %q", out)
	}

	code, _, stderr := runCapture(t, "-explain", "no-such-pass")
	if code != 2 {
		t.Fatalf("unknown pass: exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "key-determinism") {
		t.Errorf("unknown-pass error should list available passes, got: %q", stderr)
	}
}

func TestExplainBareListsAllPasses(t *testing.T) {
	code, out, _ := runCapture(t, "-explain")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range lint.PassNames() {
		if !strings.Contains(out, name) {
			t.Errorf("bare -explain output lacks pass %q:\n%s", name, out)
		}
	}
	if strings.Count(out, "\n") < len(lint.PassNames()) {
		t.Errorf("expected one line per pass:\n%s", out)
	}
}

func TestJSONAndSARIFMutuallyExclusive(t *testing.T) {
	code, _, stderr := runCapture(t, "-json", "-sarif", lintbadPath)
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(stderr, "mutually exclusive") {
		t.Errorf("stderr = %q", stderr)
	}
}

// TestWorkloadDirectDowngrades checks the paper-facing acceptance criterion:
// of the TPC-C and RUBiS procedures the pivot-key pass flags as dependent, at
// least half must now carry the pivot-free-traversal downgrade (direct part
// predicted client-side) instead of the pivot-read fallback.
func TestWorkloadDirectDowngrades(t *testing.T) {
	_, out, _ := runCapture(t, "-json", "-workload", "tpcc,rubis")
	var findings []struct {
		Prog    string `json:"prog"`
		Pass    string `json:"pass"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	downgraded := map[string]bool{}
	fallback := map[string]bool{}
	for _, f := range findings {
		if f.Pass != "pivot-key" {
			continue
		}
		switch {
		case strings.Contains(f.Message, "predicted client-side"):
			downgraded[f.Prog] = true
		case strings.Contains(f.Message, "falls back to pivot reads"):
			fallback[f.Prog] = true
		}
	}
	total := len(downgraded) + len(fallback)
	if total == 0 {
		t.Fatal("no pivot-key findings over tpcc+rubis")
	}
	if 2*len(downgraded) < total {
		t.Errorf("only %d of %d dependent procedures proven pivot-free (downgraded=%v, fallback=%v)",
			len(downgraded), total, keys(downgraded), keys(fallback))
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

package main

import (
	"encoding/json"
	"io"

	"prognosticator/internal/lint"
)

// SARIF 2.1.0 output: the interchange format CI systems (GitHub code
// scanning, most SARIF viewers) ingest. Only the subset prognolint needs is
// modeled; rule metadata comes from the same pass documentation that backs
// `-explain`.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	FullDescription  sarifMessage `json:"fullDescription"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation  `json:"physicalLocation"`
	LogicalLocations []sarifLogicalLocation `json:"logicalLocations,omitempty"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           *sarifRegion          `json:"region,omitempty"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifLogicalLocation struct {
	FullyQualifiedName string `json:"fullyQualifiedName"`
	Kind               string `json:"kind,omitempty"`
}

// sarifLevel maps lint severities onto the SARIF level enumeration.
func sarifLevel(s lint.Severity) string {
	switch s {
	case lint.SevError:
		return "error"
	case lint.SevWarning:
		return "warning"
	default:
		return "note"
	}
}

// writeSARIF renders the findings as one SARIF run. The rule table lists
// every documented pass (sorted), so rule indices are stable across runs
// regardless of which passes fired.
func writeSARIF(w io.Writer, findings []fileFinding) error {
	names := lint.PassNames()
	ruleIndex := make(map[string]int, len(names))
	rules := make([]sarifRule, 0, len(names))
	for i, n := range names {
		doc, _ := lint.Explain(n)
		rules = append(rules, sarifRule{
			ID:               n,
			ShortDescription: sarifMessage{Text: firstLine(doc)},
			FullDescription:  sarifMessage{Text: doc},
		})
		ruleIndex[n] = i
	}

	results := make([]sarifResult, 0, len(findings))
	for _, fd := range findings {
		idx, ok := ruleIndex[fd.Pass]
		if !ok {
			// An undocumented pass still yields a valid result; -1 tells the
			// consumer the rule table has no entry.
			idx = -1
		}
		loc := sarifLocation{
			PhysicalLocation: sarifPhysicalLocation{
				ArtifactLocation: sarifArtifactLocation{URI: fd.File},
			},
			LogicalLocations: []sarifLogicalLocation{{
				FullyQualifiedName: fd.Prog + ":" + fd.Path,
				Kind:               "function",
			}},
		}
		if fd.Pos.IsValid() {
			loc.PhysicalLocation.Region = &sarifRegion{StartLine: fd.Pos.Line, StartColumn: fd.Pos.Col}
		}
		results = append(results, sarifResult{
			RuleID:    fd.Pass,
			RuleIndex: idx,
			Level:     sarifLevel(fd.Severity),
			Message:   sarifMessage{Text: fd.Message},
			Locations: []sarifLocation{loc},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "prognolint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// firstLine returns the first line of a multi-line doc string.
func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

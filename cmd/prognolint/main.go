// Command prognolint runs the static-analysis passes (internal/lint) over
// transaction source files and reports positioned findings.
//
// Usage:
//
//	prognolint [flags] [file.txn...]
//
//	-json           emit findings as a JSON array instead of text
//	-sarif          emit findings as a SARIF 2.1.0 log instead of text
//	-explain [PASS] print what the named lint pass checks and why, then
//	                exit; with no pass name, list every pass with a one-line
//	                summary
//	-fail-on SEV    exit non-zero at/above this severity (error|warning|info;
//	                default warning)
//	-soundness N    additionally derive each transaction's SE profile and
//	                cross-validate it against the concrete interpreter on N
//	                random samples per store state (plus boundary samples)
//	-seed S         RNG seed for -soundness sampling (default 1)
//	-workload W,... additionally lint the named built-in workload catalogs
//	                (tpcc, rubis) against their real schemas
//
// Output is deterministic: within each input file (and each workload catalog)
// programs are reported in name order, and findings within a program are
// sorted by position. Two runs over the same inputs produce byte-identical
// output, so CI can diff against a checked-in baseline.
//
// The schema is inferred from the table accesses across all given files
// (first access fixes a table's key arity), so source files need no separate
// schema declaration; conflicting arities surface as schema findings.
// Workload catalogs are built from the Go workload packages and checked
// against their declared schemas instead.
//
// Exit status: 0 clean (below the -fail-on threshold), 1 findings at or
// above the threshold, 2 usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"prognosticator/internal/lang"
	"prognosticator/internal/lint"
	"prognosticator/internal/symexec"
	"prognosticator/internal/workload/rubis"
	"prognosticator/internal/workload/tpcc"
)

// fileFinding is a finding tagged with its source file for output.
type fileFinding struct {
	File string `json:"file"`
	lint.Finding
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("prognolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	sarifOut := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	explain := fs.String("explain", "", "print what the named lint pass checks, then exit")
	failOn := fs.String("fail-on", "warning", "exit non-zero at/above this severity: error, warning or info")
	soundness := fs.Int("soundness", 0, "cross-validate SE profiles on this many random samples (0 disables)")
	seed := fs.Int64("seed", 1, "RNG seed for -soundness sampling")
	workloads := fs.String("workload", "", "comma-separated built-in workload catalogs to lint (tpcc, rubis)")
	// A bare trailing -explain carries no pass name, which flag would reject
	// ("flag needs an argument"); treat it as a request to list every pass
	// with the first line of its documentation.
	if n := len(args); n > 0 && (args[n-1] == "-explain" || args[n-1] == "--explain") {
		for _, name := range lint.PassNames() {
			doc, _ := lint.Explain(name)
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(stdout, "%-18s %s\n", name, doc)
		}
		return 0
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *explain != "" {
		doc, ok := lint.Explain(*explain)
		if !ok {
			fmt.Fprintf(stderr, "prognolint: unknown pass %q; available passes:\n", *explain)
			for _, n := range lint.PassNames() {
				fmt.Fprintf(stderr, "\t%s\n", n)
			}
			return 2
		}
		fmt.Fprintf(stdout, "%s\n\n%s\n", *explain, doc)
		return 0
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "prognolint: -json and -sarif are mutually exclusive")
		return 2
	}
	if fs.NArg() == 0 && *workloads == "" {
		fmt.Fprintln(stderr, "prognolint: no input files or -workload")
		fs.Usage()
		return 2
	}
	threshold, err := lint.ParseSeverity(*failOn)
	if err != nil {
		fmt.Fprintf(stderr, "prognolint: bad -fail-on %q (want error, warning or info)\n", *failOn)
		return 2
	}

	// Parse every file first: the schema is inferred across all of them.
	type fileProgs struct {
		path  string
		progs []*lang.Program
	}
	var files []fileProgs
	var all []*lang.Program
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "prognolint: %v\n", err)
			return 2
		}
		progs, err := lang.ParseAll(string(src))
		if err != nil {
			fmt.Fprintf(stderr, "prognolint: %s: %v\n", path, err)
			return 2
		}
		files = append(files, fileProgs{path, progs})
		all = append(all, progs...)
	}

	var findings []fileFinding
	if len(files) > 0 {
		// Infer the schema from programs in file order (the first access fixes
		// a table's key arity), then report per file in program-name order.
		linter := lint.New(lint.InferSchema(all...))
		for _, f := range files {
			sortByName(f.progs)
			for _, p := range f.progs {
				for _, fd := range linter.Run(p) {
					findings = append(findings, fileFinding{File: f.path, Finding: fd})
				}
				if *soundness > 0 {
					findings = append(findings, checkSoundness(f.path, p, *soundness, *seed, stderr)...)
				}
			}
		}
	}

	if *workloads != "" {
		for _, name := range strings.Split(*workloads, ",") {
			name = strings.TrimSpace(name)
			schema, progs, err := workloadCatalog(name)
			if err != nil {
				fmt.Fprintf(stderr, "prognolint: %v\n", err)
				return 2
			}
			label := "workload:" + name
			linter := lint.New(schema)
			sortByName(progs)
			for _, p := range progs {
				for _, fd := range linter.Run(p) {
					findings = append(findings, fileFinding{File: label, Finding: fd})
				}
				if *soundness > 0 {
					findings = append(findings, checkSoundness(label, p, *soundness, *seed, stderr)...)
				}
			}
		}
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []fileFinding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "prognolint: %v\n", err)
			return 2
		}
	case *sarifOut:
		if err := writeSARIF(stdout, findings); err != nil {
			fmt.Fprintf(stderr, "prognolint: %v\n", err)
			return 2
		}
	default:
		for _, fd := range findings {
			fmt.Fprintf(stdout, "%s:%s\n", fd.File, fd.Finding.String())
		}
		if len(findings) == 0 {
			fmt.Fprintln(stdout, "prognolint: no findings")
		}
	}

	plain := make([]lint.Finding, len(findings))
	for i, fd := range findings {
		plain[i] = fd.Finding
	}
	if lint.MaxSeverity(plain) >= threshold {
		return 1
	}
	return 0
}

// sortByName orders programs by name for deterministic reporting.
func sortByName(progs []*lang.Program) {
	sort.Slice(progs, func(i, j int) bool { return progs[i].Name < progs[j].Name })
}

// workloadCatalog returns the named built-in workload's schema and programs,
// sized down where the defaults would make symbolic analysis needlessly
// expensive (newOrder's profile grows with OrderLinesMax; the contention
// structure the lint checks is unaffected by catalog size).
func workloadCatalog(name string) (*lang.Schema, []*lang.Program, error) {
	switch name {
	case "tpcc":
		cfg := tpcc.DefaultConfig(2)
		cfg.Items = 100
		cfg.CustomersPerDistrict = 20
		cfg.OrderLinesMax = 8
		return tpcc.Schema(), tpcc.Programs(cfg), nil
	case "rubis":
		return rubis.Schema(), rubis.Programs(rubis.DefaultConfig()), nil
	default:
		return nil, nil, fmt.Errorf("unknown workload %q (want tpcc or rubis)", name)
	}
}

// checkSoundness derives the profile with the optimized symbolic execution
// (profile only — the unoptimized comparison run would dominate the lint's
// runtime on loop-heavy transactions) and cross-validates it against the
// concrete interpreter. Analysis failures are reported as findings, not
// fatal errors: a file that defeats the symbolic executor is precisely what
// the lint run should surface.
func checkSoundness(path string, p *lang.Program, samples int, seed int64, stderr io.Writer) []fileFinding {
	prof, err := symexec.AnalyzeProfileOnly(p)
	if err != nil {
		return []fileFinding{{File: path, Finding: lint.Finding{
			Prog: p.Name, Pass: "profile-soundness", Path: "profile",
			Severity: lint.SevError,
			Message:  fmt.Sprintf("symbolic execution failed: %v", err),
		}}}
	}
	rep, err := lint.CheckSoundness(p, prof, lint.SoundnessOptions{Samples: samples, Seed: seed})
	if err != nil {
		fmt.Fprintf(stderr, "prognolint: soundness %s: %v\n", p.Name, err)
		return nil
	}
	var out []fileFinding
	for _, fd := range rep.Findings() {
		out = append(out, fileFinding{File: path, Finding: fd})
	}
	return out
}

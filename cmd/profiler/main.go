// Command profiler runs the offline symbolic-execution analysis over the
// TPC-C and RUBiS update transactions and prints the paper's Table I.
//
// Usage:
//
//	profiler [-warehouses N] [-items N] [-format text|csv] [-tree tx]
//
// -tree additionally dumps the named transaction's profile tree source for
// inspection.
package main

import (
	"flag"
	"fmt"
	"os"

	"prognosticator/internal/harness"
	"prognosticator/internal/lang"
	"prognosticator/internal/symexec"
	"prognosticator/internal/workload/rubis"
	"prognosticator/internal/workload/tpcc"
)

// analyzeFile parses a transaction source file and prints each
// transaction's profile summary.
func analyzeFile(path string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	progs, err := lang.ParseAll(string(src))
	if err != nil {
		return err
	}
	for _, p := range progs {
		prof, err := symexec.AnalyzeOptimized(p)
		if err != nil {
			return fmt.Errorf("%s: %w", p.Name, err)
		}
		fmt.Printf("%-24s class=%-3v PSCs=%-5d states=%-6d indirect=%-3d pivot-free-traversal=%v\n",
			p.Name, prof.Class(), prof.NumLeaves(), prof.Stats.StatesExplored,
			prof.Stats.IndirectKeys, prof.PivotFreeTraversal())
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "profiler:", err)
		os.Exit(1)
	}
}

func run() error {
	warehouses := flag.Int("warehouses", 10, "TPC-C warehouse count")
	items := flag.Int("items", 1000, "TPC-C item catalog size")
	format := flag.String("format", "text", "output format: text or csv")
	tree := flag.String("tree", "", "also dump the profile source of this transaction")
	file := flag.String("file", "", "analyze transactions from this source file instead of the built-in benchmarks")
	flag.Parse()

	if *file != "" {
		return analyzeFile(*file)
	}

	tcfg := tpcc.DefaultConfig(*warehouses)
	tcfg.Items = *items
	rcfg := rubis.DefaultConfig()

	rows, err := harness.TableI(tcfg, rcfg)
	if err != nil {
		return err
	}
	switch *format {
	case "csv":
		fmt.Print(harness.TableICSV(rows))
	default:
		fmt.Print(harness.RenderTableI(rows))
	}

	if *tree != "" {
		progs := map[string]*lang.Program{}
		for _, p := range tpcc.Programs(tcfg) {
			progs[p.Name] = p
		}
		for _, p := range rubis.Programs(rcfg) {
			progs[p.Name] = p
		}
		prog, ok := progs[*tree]
		if !ok {
			return fmt.Errorf("unknown transaction %q", *tree)
		}
		prof, err := symexec.AnalyzeOptimized(prog)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s\nclass=%s leaves=%d pivot-free-traversal=%v\n",
			lang.Format(prog), prof.Class(), prof.NumLeaves(), prof.PivotFreeTraversal())
	}
	return nil
}

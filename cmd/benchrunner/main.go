// Command benchrunner regenerates the paper's evaluation figures:
//
//	fig3 — TPC-C max sustainable throughput + normalized abort rate at
//	       100/10/1 warehouses for MQ-MF, MQ-SF, Calvin-100, Calvin-200,
//	       NODO and SEQ (Fig. 3a/3b);
//	fig4 — the same line-up on the RUBiS-C update mix (Fig. 4a/4b);
//	fig5 — the eight Prognosticator variants {MQ,1Q}x{SF,MF}x{SE,R} with
//	       per-transaction prepare / re-execution time breakdown
//	       (Fig. 5a/5b).
//
// Usage:
//
//	benchrunner -experiment fig3|fig4|fig5|all [-scale quick|full]
//	            [-workers N] [-format text|csv]
//
// "quick" runs laptop-sized sweeps in a couple of minutes; "full" uses the
// paper's 10 ms batch interval and the full contention grid.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"time"

	"prognosticator/internal/harness"
	"prognosticator/internal/workload/rubis"
	"prognosticator/internal/workload/tpcc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
}

func run() error {
	experiment := flag.String("experiment", "all", "fig3, fig4, fig5 or all")
	scale := flag.String("scale", "quick", "quick or full")
	workers := flag.Int("workers", 20, "virtual worker threads per replica (paper: 20)")
	format := flag.String("format", "text", "text or csv")
	flag.Parse()

	// The harness is allocation-heavy; relax GC pressure as any database
	// benchmark setup would.
	debug.SetGCPercent(400)

	var opts harness.Options
	var warehouses []int
	var tpccSize func(w int) tpcc.Config
	rcfg := rubis.DefaultConfig()
	switch *scale {
	case "full":
		opts = harness.Options{
			BatchInterval: 10 * time.Millisecond,
			P99SLA:        10 * time.Millisecond,
			Batches:       50,
			Warmup:        10,
			StartSize:     16,
			MaxSize:       1 << 14,
			Growth:        1.5,
			Workers:       *workers,
			Seed:          1,
			Virtual:       true,
		}
		warehouses = []int{100, 10, 1}
		tpccSize = tpcc.DefaultConfig
	default:
		opts = harness.Options{
			BatchInterval: 10 * time.Millisecond,
			P99SLA:        10 * time.Millisecond,
			Batches:       30,
			Warmup:        5,
			StartSize:     8,
			MaxSize:       1 << 12,
			Growth:        1.5,
			Workers:       *workers,
			Seed:          1,
			Virtual:       true,
		}
		warehouses = []int{100, 10, 1}
		tpccSize = func(w int) tpcc.Config {
			cfg := tpcc.DefaultConfig(w)
			cfg.Items = 200
			cfg.CustomersPerDistrict = 30
			return cfg
		}
		rcfg = rubis.Config{Users: 300, Items: 300}
	}

	tpccWorkloads := func() ([]harness.Workload, error) {
		var out []harness.Workload
		for _, w := range warehouses {
			wl, err := harness.TPCCWorkload(tpccSize(w))
			if err != nil {
				return nil, err
			}
			out = append(out, wl)
		}
		return out, nil
	}

	runFig3 := func() error {
		wls, err := tpccWorkloads()
		if err != nil {
			return err
		}
		rows, err := harness.RunComparison(harness.SimComparisonSystems(), wls, opts)
		if err != nil {
			return err
		}
		emitComparison("Fig. 3: TPC-C throughput and normalized abort rate", rows, *format)
		return nil
	}
	runFig4 := func() error {
		wl, err := harness.RUBiSWorkload(rcfg)
		if err != nil {
			return err
		}
		rows, err := harness.RunComparison(harness.SimComparisonSystems(), []harness.Workload{wl}, opts)
		if err != nil {
			return err
		}
		emitComparison("Fig. 4: RUBiS-C throughput and normalized abort rate", rows, *format)
		return nil
	}
	runFig5 := func() error {
		wls, err := tpccWorkloads()
		if err != nil {
			return err
		}
		rows, err := harness.RunVariants(wls, opts)
		if err != nil {
			return err
		}
		if *format == "csv" {
			fmt.Print(harness.VariantsCSV(rows))
		} else {
			fmt.Print(harness.RenderVariants(rows))
		}
		return nil
	}

	switch *experiment {
	case "fig3":
		return runFig3()
	case "fig4":
		return runFig4()
	case "fig5":
		return runFig5()
	case "all":
		if err := runFig3(); err != nil {
			return err
		}
		if err := runFig4(); err != nil {
			return err
		}
		return runFig5()
	default:
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
}

func emitComparison(title string, rows []harness.ComparisonRow, format string) {
	if format == "csv" {
		fmt.Print(harness.ComparisonCSV(rows))
		return
	}
	fmt.Print(harness.RenderComparison(title, rows))
	fmt.Println()
}

// Command replicad runs an in-process replicated deployment: a Raft-
// sequenced cluster of replicas, each executing the same ordered batches
// through its own Prognosticator engine — with a DIFFERENT worker count per
// replica — and verifies after every batch that all replica state hashes
// agree. This is the determinism property the whole system exists for.
//
// Usage:
//
//	replicad [-replicas N] [-batches N] [-txs N] [-warehouses N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"prognosticator/internal/engine"
	"prognosticator/internal/harness"
	"prognosticator/internal/replica"
	"prognosticator/internal/store"
	"prognosticator/internal/value"
	"prognosticator/internal/workload/tpcc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "replicad:", err)
		os.Exit(1)
	}
}

func run() error {
	replicas := flag.Int("replicas", 3, "number of replicas")
	batches := flag.Int("batches", 20, "batches to run")
	txs := flag.Int("txs", 100, "transactions per batch")
	warehouses := flag.Int("warehouses", 4, "TPC-C warehouses")
	seed := flag.Int64("seed", 1, "workload seed")
	transport := flag.String("transport", "mem", "consensus transport: mem (simulated) or tcp (loopback sockets)")
	flag.Parse()

	cfg := tpcc.DefaultConfig(*warehouses)
	cfg.Items = 200
	cfg.CustomersPerDistrict = 30
	reg, err := engine.NewRegistry(tpcc.Schema(), tpcc.Programs(cfg)...)
	if err != nil {
		return err
	}
	cluster, err := replica.NewCluster(replica.ClusterConfig{
		Replicas: *replicas,
		Seed:     *seed,
		TCP:      *transport == "tcp",
		NewExecutor: func(id string, st *store.Store) (engine.Executor, error) {
			tpcc.Populate(st, cfg)
			// Deliberately different parallelism per replica: determinism
			// must hold anyway.
			workers := 1 + len(id)%7
			fmt.Printf("replica %s: %d workers\n", id, workers)
			return engine.New(reg, st, engine.Config{Workers: workers}), nil
		},
	})
	if err != nil {
		return err
	}
	defer cluster.Stop()

	gen := tpcc.NewGenerator(cfg, *seed)
	start := time.Now()
	for b := 0; b < *batches; b++ {
		reqs := make([]struct {
			TxName string
			Inputs map[string]value.Value
		}, *txs)
		for i := range reqs {
			reqs[i].TxName, reqs[i].Inputs = gen.Next()
		}
		if err := cluster.SubmitBatch(reqs, 30*time.Second); err != nil {
			return err
		}
		hashes := cluster.StateHashes()
		if !cluster.Converged() {
			return fmt.Errorf("DIVERGENCE after batch %d: %x", b+1, hashes)
		}
		fmt.Printf("batch %3d: %d tx committed on %d replicas, state hash %016x ✓\n",
			b+1, *txs, *replicas, hashes[0])
	}
	elapsed := time.Since(start)
	total := *batches * *txs
	fmt.Printf("\n%d transactions, %d batches, %d replicas in %v (%.0f tx/s/replica)\n",
		total, *batches, *replicas, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	counts := harness.ClassCount(reg)
	fmt.Printf("catalog: %v — all replicas converged on every batch (transport: %s)\n", counts, *transport)
	return nil
}

// Command replicad runs an in-process replicated deployment: a Raft-
// sequenced cluster of replicas, each executing the same ordered batches
// through its own Prognosticator engine — with a DIFFERENT worker count per
// replica — and verifies after every batch that all replica state hashes
// agree. This is the determinism property the whole system exists for.
//
// With -chaos, a seeded fault schedule (internal/chaos) runs alongside the
// workload: replicas are killed and restarted mid-batch (with WAL recovery
// and occasional WAL tail corruption), the leader is partitioned away, and
// message loss/delay is injected — after which all replicas must still
// converge. Chaos enables -datadir persistence (a temp directory when
// unset) and runs over either transport: over tcp, partition faults are
// skipped (memnet-only) while loss/delay inject at the endpoints and
// crash/restart close and re-listen real sockets.
//
// With -snapshot-every N (requires -datadir, implied under -chaos), each
// replica captures a store snapshot every N applied batches, compacts its
// raft log below it and prunes its WAL prefix, so crashed replicas recover
// from snapshot + WAL suffix instead of replaying from index 1.
//
// Flow-control flags (-max-queue, -max-inflight, -submit-rate,
// -retry-budget) bound the submit path: excess load is shed synchronously
// with a typed error instead of queueing without bound, and retries draw
// from a finite budget. -submit-window tunes how long one raft proposal is
// waited on before the batch is idempotently re-proposed.
//
// Usage:
//
//	replicad [-replicas N] [-batches N] [-txs N] [-warehouses N] [-seed N]
//	         [-transport mem|tcp] [-chaos] [-chaos-seed N] [-datadir DIR]
//	         [-snapshot-every N] [-max-queue N] [-max-inflight N]
//	         [-submit-rate R] [-retry-budget R] [-submit-window D]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"prognosticator/internal/chaos"
	"prognosticator/internal/engine"
	"prognosticator/internal/flowctl"
	"prognosticator/internal/harness"
	"prognosticator/internal/replica"
	"prognosticator/internal/store"
	"prognosticator/internal/value"
	"prognosticator/internal/workload/tpcc"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "replicad:", err)
		os.Exit(1)
	}
}

func run() error {
	replicas := flag.Int("replicas", 3, "number of replicas")
	batches := flag.Int("batches", 20, "batches to run")
	txs := flag.Int("txs", 100, "transactions per batch")
	warehouses := flag.Int("warehouses", 4, "TPC-C warehouses")
	seed := flag.Int64("seed", 1, "workload seed")
	transport := flag.String("transport", "mem", "consensus transport: mem (simulated) or tcp (loopback sockets)")
	chaosOn := flag.Bool("chaos", false, "run a fault schedule alongside the workload (over tcp, partition faults are skipped; loss/delay inject at the endpoints)")
	chaosSeed := flag.Int64("chaos-seed", 1, "fault schedule seed (with -chaos)")
	chaosSteps := flag.Int("chaos-steps", 0, "fault schedule length (0 = one step per two batches, with -chaos)")
	dataDir := flag.String("datadir", "", "persist raft state and replica WALs under this directory (required for crash/restart faults; temp dir when -chaos is set and this is empty)")
	snapshotEvery := flag.Uint64("snapshot-every", 0, "capture a store snapshot and compact the raft log every N applied batches (0 disables; requires -datadir)")
	maxQueue := flag.Int("max-queue", 0, "bound each dispatcher's buffered request queue; submits beyond it are shed with flowctl.ErrOverload (0 = unbounded)")
	maxInflight := flag.Int("max-inflight", 0, "bound concurrently admitted submit batches cluster-wide (0 = unbounded)")
	submitRate := flag.Float64("submit-rate", 0, "token-bucket admission rate in batches/second; without a token the batch is shed, never queued (0 = unlimited)")
	retryBudget := flag.Float64("retry-budget", 0, "cap on stored retry tokens; each retry withdraws one, each acknowledged submit deposits a fraction (0 = unlimited retries)")
	submitWindow := flag.Duration("submit-window", 0, "how long one proposal is waited on before the batch is idempotently re-proposed through the then-current leader (0 = default 2s)")
	flag.Parse()

	if *snapshotEvery > 0 && *dataDir == "" && !*chaosOn {
		return fmt.Errorf("-snapshot-every requires -datadir (snapshot files must land somewhere durable)")
	}
	if *chaosOn && *dataDir == "" {
		d, err := os.MkdirTemp("", "replicad-chaos-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(d)
		*dataDir = d
		fmt.Printf("chaos: persisting state under %s\n", d)
	}

	cfg := tpcc.DefaultConfig(*warehouses)
	cfg.Items = 200
	cfg.CustomersPerDistrict = 30
	reg, err := engine.NewRegistry(tpcc.Schema(), tpcc.Programs(cfg)...)
	if err != nil {
		return err
	}
	cluster, err := replica.NewCluster(replica.ClusterConfig{
		Replicas:      *replicas,
		Seed:          *seed,
		TCP:           *transport == "tcp",
		DataDir:       *dataDir,
		SnapshotEvery: *snapshotEvery,
		// Under chaos a crashed replica lags until it rejoins; a majority
		// carries the workload forward in the meantime.
		QuorumSubmit: *chaosOn,
		SubmitWindow: *submitWindow,
		Flow: flowctl.Config{
			MaxQueue:    *maxQueue,
			MaxInflight: *maxInflight,
			SubmitRate:  *submitRate,
			RetryBudget: *retryBudget,
		},
		NewExecutor: func(id string, st *store.Store) (engine.Executor, error) {
			tpcc.Populate(st, cfg)
			// Deliberately different parallelism per replica: determinism
			// must hold anyway.
			workers := 1 + len(id)%7
			fmt.Printf("replica %s: %d workers\n", id, workers)
			return engine.New(reg, st, engine.Config{Workers: workers}), nil
		},
	})
	if err != nil {
		return err
	}
	defer cluster.Stop()

	var injector *chaos.Injector
	if *chaosOn {
		steps := *chaosSteps
		if steps <= 0 {
			steps = *batches / 2
		}
		injector = chaos.New(cluster, chaos.Config{
			Seed:  *chaosSeed,
			Steps: steps,
			Logf: func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			},
		})
		fmt.Printf("chaos: seed=%d plan=%v\n", *chaosSeed, injector.Plan())
	}

	gen := tpcc.NewGenerator(cfg, *seed)
	start := time.Now()
	var wg sync.WaitGroup
	stepIdx := 0
	for b := 0; b < *batches; b++ {
		if injector != nil && stepIdx < injector.Steps() && b%2 == 0 {
			i := stepIdx
			stepIdx++
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := injector.Step(i); err != nil {
					fmt.Fprintln(os.Stderr, "replicad:", err)
				}
			}()
		}
		reqs := make([]struct {
			TxName string
			Inputs map[string]value.Value
		}, *txs)
		for i := range reqs {
			reqs[i].TxName, reqs[i].Inputs = gen.Next()
		}
		if err := cluster.SubmitBatch(reqs, 60*time.Second); err != nil {
			return err
		}
		if injector == nil {
			// Fault-free runs check convergence after every batch; under
			// chaos, crashed replicas legitimately lag until Quiesce.
			hashes := cluster.StateHashes()
			if !cluster.Converged() {
				return fmt.Errorf("DIVERGENCE after batch %d: %x", b+1, hashes)
			}
			fmt.Printf("batch %3d: %d tx committed on %d replicas, state hash %016x ✓\n",
				b+1, *txs, *replicas, hashes[0])
		} else {
			fmt.Printf("batch %3d: %d tx committed (quorum)\n", b+1, *txs)
		}
	}
	wg.Wait()
	if injector != nil {
		if err := injector.Quiesce(60 * time.Second); err != nil {
			return err
		}
		if err := cluster.Err(); err != nil {
			return err
		}
		hashes := cluster.StateHashes()
		if !cluster.Converged() {
			return fmt.Errorf("DIVERGENCE after quiesce: %x", hashes)
		}
		for i := 0; i < cluster.Size(); i++ {
			if got := cluster.ReplicaAt(i).Batches(); got != *batches {
				return fmt.Errorf("replica %d reflects %d batches, want %d", i, got, *batches)
			}
		}
		fmt.Printf("\nchaos: converged after quiesce, state hash %016x, every batch applied exactly once\n", hashes[0])
		fmt.Printf("chaos: faults %s\n", injector.Counters())
		if cluster.Net != nil {
			fmt.Printf("chaos: net %+v\n", cluster.Net.Stats())
		}
	}
	if *maxQueue > 0 || *maxInflight > 0 || *submitRate > 0 || *retryBudget > 0 {
		fmt.Printf("flow: %s (queue high water %d)\n", cluster.Flow().Counters(), cluster.QueueHighWater())
	}
	if *snapshotEvery > 0 {
		for i := 0; i < cluster.Size(); i++ {
			rep := cluster.ReplicaAt(i)
			fmt.Printf("replica %d: snapshots taken=%d installed=%d raft compacted to %d, dedup entries=%d (watermark %d)\n",
				i, rep.Snapshots(), rep.SnapshotsInstalled(), cluster.NodeAt(i).SnapshotIndex(),
				rep.DedupSize(), rep.DedupWatermark())
		}
	}
	elapsed := time.Since(start)
	total := *batches * *txs
	fmt.Printf("\n%d transactions, %d batches, %d replicas in %v (%.0f tx/s/replica)\n",
		total, *batches, *replicas, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds())
	counts := harness.ClassCount(reg)
	fmt.Printf("catalog: %v — all replicas converged on every batch (transport: %s)\n", counts, *transport)
	return nil
}

// Benchmark entry points, one per paper table/figure plus micro and
// ablation benches. The figure benches run reduced sweeps suitable for
// `go test -bench`; cmd/benchrunner performs the full-methodology sweeps.
package prognosticator_test

import (
	"fmt"
	"testing"
	"time"

	"prognosticator/internal/engine"
	"prognosticator/internal/harness"
	"prognosticator/internal/lang"
	"prognosticator/internal/locktable"
	"prognosticator/internal/solver"
	"prognosticator/internal/store"
	"prognosticator/internal/sym"
	"prognosticator/internal/symexec"
	"prognosticator/internal/value"
	"prognosticator/internal/workload/rubis"
	"prognosticator/internal/workload/tpcc"
)

func benchTPCCConfig(warehouses int) tpcc.Config {
	cfg := tpcc.DefaultConfig(warehouses)
	cfg.Items = 200
	cfg.CustomersPerDistrict = 30
	return cfg
}

func benchOpts() harness.Options {
	return harness.Options{
		BatchInterval: 10 * time.Millisecond,
		P99SLA:        10 * time.Millisecond,
		Batches:       15,
		Warmup:        3,
		Workers:       20,
		Seed:          1,
		Virtual:       true,
	}
}

// BenchmarkTableI regenerates the SE-analysis cost table (E1). One
// iteration analyses every update transaction optimized + unoptimized.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.TableI(benchTPCCConfig(10), rubis.Config{Users: 200, Items: 200})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 10 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// benchFigPoint measures one (system, workload) pair at a fixed batch size
// and reports virtual throughput and abort rate as custom metrics.
func benchFigPoint(b *testing.B, sys harness.System, wl harness.Workload, size int) {
	b.Helper()
	var tput, abort float64
	for i := 0; i < b.N; i++ {
		pt, err := harness.RunPoint(sys, wl, size, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		tput, abort = pt.Throughput, pt.AbortPct
	}
	b.ReportMetric(tput, "vtx/s")
	b.ReportMetric(abort, "abort%")
}

// BenchmarkFig3Throughput regenerates Fig. 3 (E2/E3): the §IV-B system
// line-up on TPC-C at three contention levels, fixed batch size.
func BenchmarkFig3Throughput(b *testing.B) {
	for _, w := range []int{100, 10, 1} {
		wl, err := harness.TPCCWorkload(benchTPCCConfig(w))
		if err != nil {
			b.Fatal(err)
		}
		for _, sys := range harness.SimComparisonSystems() {
			b.Run(fmt.Sprintf("%dWH/%s", w, sys.Name), func(b *testing.B) {
				benchFigPoint(b, sys, wl, 40)
			})
		}
	}
}

// BenchmarkFig4Throughput regenerates Fig. 4 (E4/E5): RUBiS-C.
func BenchmarkFig4Throughput(b *testing.B) {
	wl, err := harness.RUBiSWorkload(rubis.Config{Users: 300, Items: 300})
	if err != nil {
		b.Fatal(err)
	}
	for _, sys := range harness.SimComparisonSystems() {
		b.Run(sys.Name, func(b *testing.B) {
			benchFigPoint(b, sys, wl, 40)
		})
	}
}

// BenchmarkFig5Variants regenerates Fig. 5 (E6/E7): the eight
// Prognosticator variants on TPC-C at medium contention.
func BenchmarkFig5Variants(b *testing.B) {
	wl, err := harness.TPCCWorkload(benchTPCCConfig(10))
	if err != nil {
		b.Fatal(err)
	}
	for _, sys := range harness.SimVariantSystems() {
		b.Run(sys.Name, func(b *testing.B) {
			benchFigPoint(b, sys, wl, 40)
		})
	}
}

// BenchmarkAblationLockSharing quantifies the shared-read-grant design
// decision: the same TPC-C batch under reader/writer vs purely exclusive
// key queues (DESIGN.md "Key-exclusive queues").
func BenchmarkAblationLockSharing(b *testing.B) {
	cfg := benchTPCCConfig(100)
	reg, err := engine.NewRegistry(tpcc.Schema(), tpcc.Programs(cfg)...)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name      string
		exclusive bool
	}{{"shared-reads", false}, {"exclusive", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var makespan time.Duration
			for i := 0; i < b.N; i++ {
				st := store.New()
				tpcc.Populate(st, cfg)
				sim := engine.NewSim(reg, st, engine.Config{
					Workers: 20, ExclusiveLocks: mode.exclusive,
				})
				gen := tpcc.NewGenerator(cfg, 1)
				batch := make([]engine.Request, 200)
				for j := range batch {
					tx, in := gen.Next()
					batch[j] = engine.Request{Seq: uint64(j + 1), TxName: tx, Inputs: in}
				}
				res, err := sim.ExecuteBatch(batch)
				if err != nil {
					b.Fatal(err)
				}
				makespan = res.VirtualMakespan
			}
			b.ReportMetric(float64(makespan.Microseconds()), "vmakespan_µs")
		})
	}
}

// BenchmarkAblationSEOptimizations measures the SE analysis with the
// paper's two optimizations toggled (taint-driven concolic execution and
// subtree pruning).
func BenchmarkAblationSEOptimizations(b *testing.B) {
	prog := tpcc.NewOrderProg(benchTPCCConfig(10))
	fixed := map[string]value.Value{"olCnt": value.Int(6)}
	for _, mode := range []struct {
		name string
		opts symexec.Options
	}{
		{"taint+prune", symexec.Options{UseTaint: true, Prune: true, SkipUnoptimized: true, FixedInputs: fixed}},
		{"prune-only", symexec.Options{Prune: true, SkipUnoptimized: true, FixedInputs: fixed}},
		{"none", symexec.Options{SkipUnoptimized: true, FixedInputs: fixed}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := symexec.Analyze(prog, mode.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProfileInstantiate measures runtime key-set preparation — the
// work the Queuer (and helping workers) do per transaction.
func BenchmarkProfileInstantiate(b *testing.B) {
	cfg := benchTPCCConfig(10)
	reg, err := engine.NewRegistry(tpcc.Schema(), tpcc.Programs(cfg)...)
	if err != nil {
		b.Fatal(err)
	}
	st := store.New()
	tpcc.Populate(st, cfg)
	snap := st.ViewAt(0)
	gen := tpcc.NewGenerator(cfg, 1)
	for _, tx := range []string{"newOrder", "payment", "delivery"} {
		prof := reg.Profiles[tx]
		var inputs map[string]value.Value
		switch tx {
		case "newOrder":
			inputs = gen.NewOrderInputs()
		case "payment":
			inputs = gen.PaymentInputs()
		default:
			inputs = gen.DeliveryInputs()
		}
		b.Run(tx, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prof.Instantiate(inputs, snap); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLockTable measures enqueue+release cycles on the deterministic
// lock table.
func BenchmarkLockTable(b *testing.B) {
	lt := locktable.New()
	keys := make([][]locktable.LockKey, 64)
	for i := range keys {
		keys[i] = []locktable.LockKey{
			{Key: value.NewKey("T", value.Int(int64(i))).Encode(), Write: true},
			{Key: value.NewKey("U", value.Int(int64(i%8))).Encode()},
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &locktable.Entry{Seq: uint64(i), Keys: keys[i%len(keys)]}
		lt.Enqueue(e)
		lt.Release(e, func(*locktable.Entry) {})
	}
}

// BenchmarkSolver measures path-constraint satisfiability checks of the
// kind the SE engine issues at every fork.
func BenchmarkSolver(b *testing.B) {
	x := sym.NewInput("x", value.KindInt, 1, 100)
	y := sym.NewInput("y", value.KindInt, 1, 100)
	atoms := []sym.Term{
		sym.Bin{Op: lang.OpLt, L: x, R: y},
		sym.Bin{Op: lang.OpGe, L: sym.Bin{Op: lang.OpAdd, L: x, R: y}, R: sym.Const{V: value.Int(50)}},
		sym.Bin{Op: lang.OpNe, L: x, R: sym.Const{V: value.Int(7)}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := solver.Check(atoms); got != solver.Sat {
			b.Fatalf("unexpected %v", got)
		}
	}
}

// BenchmarkStore measures versioned store access.
func BenchmarkStore(b *testing.B) {
	st := store.New()
	rec := value.Record(map[string]value.Value{"v": value.Int(1)})
	for i := int64(0); i < 10000; i++ {
		st.Put(0, value.NewKey("T", value.Int(i)), rec)
	}
	epoch := st.BeginEpoch()
	b.Run("Get", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st.Get(epoch, value.NewKey("T", value.Int(int64(i%10000))))
		}
	})
	b.Run("Put", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st.Put(epoch, value.NewKey("T", value.Int(int64(i%10000))), rec)
		}
	})
}

// BenchmarkEngineBatch measures real (thread-parallel) batch execution of
// the TPC-C mix — the wall-clock path used by replicas, as opposed to the
// virtual-time path used by the figures.
func BenchmarkEngineBatch(b *testing.B) {
	cfg := benchTPCCConfig(10)
	reg, err := engine.NewRegistry(tpcc.Schema(), tpcc.Programs(cfg)...)
	if err != nil {
		b.Fatal(err)
	}
	st := store.New()
	tpcc.Populate(st, cfg)
	e := engine.New(reg, st, engine.Config{Workers: 4})
	gen := tpcc.NewGenerator(cfg, 1)
	seq := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := make([]engine.Request, 100)
		for j := range batch {
			seq++
			tx, in := gen.Next()
			batch[j] = engine.Request{Seq: seq, TxName: tx, Inputs: in}
		}
		if _, err := e.ExecuteBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}
